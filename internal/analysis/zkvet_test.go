package analysis_test

import (
	"strings"
	"testing"

	"zkphire/internal/analysis"
	"zkphire/internal/analysis/analysistest"
)

// fixturePath is a module-internal import path that is neither a
// proof-path package, internal/parallel, internal/ff, nor the service
// layer — the "anywhere else in the module" vantage point.
const fixturePath = "zkphire/internal/fixture"

func one(a *analysis.Analyzer) []*analysis.Analyzer { return []*analysis.Analyzer{a} }

func TestDeterminismFlagged(t *testing.T) {
	analysistest.Run(t, one(analysis.Determinism), "testdata/determinism/flagged", "zkphire/internal/transcript")
}

func TestDeterminismClean(t *testing.T) {
	analysistest.Run(t, one(analysis.Determinism), "testdata/determinism/clean", "zkphire/internal/transcript")
}

// TestDeterminismScope loads the flagged fixture outside the proof
// path, where none of its constructs matter for proof bytes.
func TestDeterminismScope(t *testing.T) {
	pkg := analysistest.Load(t, "testdata/determinism/flagged", fixturePath)
	diags, err := analysis.Run(pkg, one(analysis.Determinism))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("determinism fired outside the proof path: %s", d)
	}
}

func TestLazyReduceFlagged(t *testing.T) {
	analysistest.Run(t, one(analysis.LazyReduce), "testdata/lazyreduce/flagged", fixturePath)
}

func TestLazyReduceClean(t *testing.T) {
	analysistest.Run(t, one(analysis.LazyReduce), "testdata/lazyreduce/clean", fixturePath)
}

func TestArenaPairFlagged(t *testing.T) {
	analysistest.Run(t, one(analysis.ArenaPair), "testdata/arenapair/flagged", fixturePath)
}

func TestArenaPairClean(t *testing.T) {
	analysistest.Run(t, one(analysis.ArenaPair), "testdata/arenapair/clean", fixturePath)
}

func TestNoRawGoFlagged(t *testing.T) {
	analysistest.Run(t, one(analysis.NoRawGo), "testdata/norawgo/flagged", fixturePath)
}

// TestNoRawGoClean: stage DAGs, budget fan-out, and externally resolved
// futures route every spawn through internal/parallel — no findings.
func TestNoRawGoClean(t *testing.T) {
	analysistest.Run(t, one(analysis.NoRawGo), "testdata/norawgo/clean", fixturePath)
}

// TestNoRawGoScope loads the same fixture as internal/parallel itself,
// the one package allowed to own goroutines.
func TestNoRawGoScope(t *testing.T) {
	pkg := analysistest.Load(t, "testdata/norawgo/flagged", "zkphire/internal/parallel")
	diags, err := analysis.Run(pkg, one(analysis.NoRawGo))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("norawgo fired inside internal/parallel: %s", d)
	}
}

func TestErrorPathFlagged(t *testing.T) {
	analysistest.Run(t, one(analysis.ErrorPath), "testdata/errorpath/flagged", "zkphire/internal/service")
}

func TestErrorPathClean(t *testing.T) {
	analysistest.Run(t, one(analysis.ErrorPath), "testdata/errorpath/clean", "zkphire/internal/service")
}

// TestErrorWrapScope checks the %w rule stays confined to the service
// layer: the same fixture elsewhere keeps its Unmarshal findings but
// loses the wrapping ones.
func TestErrorWrapScope(t *testing.T) {
	pkg := analysistest.Load(t, "testdata/errorpath/flagged", fixturePath)
	diags, err := analysis.Run(pkg, one(analysis.ErrorPath))
	if err != nil {
		t.Fatal(err)
	}
	sawUnmarshal := false
	for _, d := range diags {
		if strings.Contains(d.Message, "%w") {
			t.Errorf("wrapping rule fired outside the service layer: %s", d)
		}
		if strings.Contains(d.Message, "reachable from") {
			sawUnmarshal = true
		}
	}
	if !sawUnmarshal {
		t.Error("Unmarshal panic rule should apply module-wide, found nothing")
	}
}

// TestRecoverscopeFlagged loads the violation fixture as the service
// layer itself — the findings are the ones no package may contain.
func TestRecoverscopeFlagged(t *testing.T) {
	analysistest.Run(t, one(analysis.Recoverscope), "testdata/recoverscope/flagged", "zkphire/internal/service")
}

// TestRecoverscopeClean: the sanctioned recover boundary and every
// blessed lease shape, also loaded as the service layer.
func TestRecoverscopeClean(t *testing.T) {
	analysistest.Run(t, one(analysis.Recoverscope), "testdata/recoverscope/clean", "zkphire/internal/service")
}

// TestRecoverscopeScope: the same clean fixture loaded anywhere else
// loses runGuarded's exemption — its recover becomes the one finding —
// while the lease shapes stay clean.
func TestRecoverscopeScope(t *testing.T) {
	pkg := analysistest.Load(t, "testdata/recoverscope/clean", fixturePath)
	diags, err := analysis.Run(pkg, one(analysis.Recoverscope))
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "job boundary") {
		t.Fatalf("clean fixture outside the service layer: got %d findings %v, want exactly runGuarded's recover", len(diags), diags)
	}
}

// TestRecoverscopeParallelExempt: internal/parallel implements the lease
// and is exempt from the lease rule (recover is still policed).
func TestRecoverscopeParallelExempt(t *testing.T) {
	pkg := analysistest.Load(t, "testdata/recoverscope/flagged", "zkphire/internal/parallel")
	diags, err := analysis.Run(pkg, one(analysis.Recoverscope))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "Budget.") {
			t.Errorf("lease rule fired inside internal/parallel: %s", d)
		}
		if !strings.Contains(d.Message, "job boundary") {
			t.Errorf("unexpected finding: %s", d)
		}
	}
}

// TestIgnoreSuppressed: a well-formed directive silences its finding
// and produces no diagnostics of its own.
func TestIgnoreSuppressed(t *testing.T) {
	analysistest.Run(t, analysis.All(), "testdata/ignore/suppressed", fixturePath)
}

// TestIgnoreMalformed: a directive missing its reason (or naming an
// unknown analyzer, or naming nothing) is itself a finding AND fails to
// suppress the diagnostic it precedes.
func TestIgnoreMalformed(t *testing.T) {
	pkg := analysistest.Load(t, "testdata/ignore/bad", fixturePath)
	diags, err := analysis.Run(pkg, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	wantSubstrings := []string{
		"needs a non-empty reason",
		"names unknown analyzer nosuchpass",
		"needs an analyzer name and a reason",
	}
	for _, want := range wantSubstrings {
		found := false
		for _, d := range diags {
			if d.Analyzer == "zkvet" && strings.Contains(d.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no zkvet directive diagnostic containing %q in %v", want, diags)
		}
	}
	suppressed := 0
	for _, d := range diags {
		if d.Analyzer == "norawgo" {
			suppressed++
		}
	}
	if suppressed != 3 {
		t.Errorf("malformed directives must not suppress: want 3 norawgo findings, got %d in %v", suppressed, diags)
	}
}
