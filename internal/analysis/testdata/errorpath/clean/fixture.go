// Package fixture satisfies both errorpath contracts: Unmarshal paths
// return errors, service errors wrap with %w, and the one panic lives
// in a helper no Unmarshal root reaches.
package fixture

import "fmt"

type Blob struct{ b []byte }

func (d *Blob) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("blob: short buffer: %d bytes", len(data))
	}
	d.b = data
	return nil
}

func wrap(err error) error {
	return fmt.Errorf("rejected: %w", err)
}

// mustSize panics, but nothing on an Unmarshal path calls it.
func mustSize(n int) int {
	if n < 0 {
		panic("negative size")
	}
	return n
}
