// Package fixture violates both errorpath contracts: panics reachable
// from Unmarshal entry points, and fmt.Errorf stringifying an error
// without %w. The test loads it as the service-layer import path.
package fixture

import (
	"fmt"
	"log"
)

type Blob struct{ b []byte }

func (d *Blob) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		panic("blob: short buffer") // want "panic is reachable from .*UnmarshalBinary"
	}
	d.b = data
	return nil
}

func UnmarshalHeader(data []byte) (int, error) {
	return headerLen(data), nil
}

func headerLen(data []byte) int {
	if len(data) == 0 {
		panic("empty header") // want "panic is reachable from .*UnmarshalHeader"
	}
	return int(data[0])
}

func UnmarshalStrict(data []byte) error {
	if len(data) == 0 {
		log.Fatal("no data") // want "log.Fatal is reachable from"
	}
	return nil
}

func reject(err error) error {
	return fmt.Errorf("rejected: %v", err) // want "stringified by fmt.Errorf without %w"
}
