// Package fixture contains every recoverscope violation class. The test
// loads it AS the service layer, so the findings below are exactly the
// ones that survive even where runGuarded itself would be legal.
package fixture

import (
	"context"

	"zkphire/internal/parallel"
)

var budget = parallel.NewBudget(4)

func work() {}

// swallow recovers outside the job boundary: the panic dies here and the
// boundary's lease/metric accounting never runs.
func swallow() {
	defer func() {
		if r := recover(); r != nil { // want "outside the designated job boundary"
			_ = r
		}
	}()
	work()
}

// runGuardedly is NOT runGuarded — near-miss names don't get the
// exemption.
func runGuardedly() {
	defer func() {
		_ = recover() // want "outside the designated job boundary"
	}()
}

// neverReleased leaks on every path.
func neverReleased(ctx context.Context) error {
	lease, err := budget.Acquire(ctx, 2) // want "never released"
	if err != nil {
		return err
	}
	_ = lease.Workers()
	return nil
}

// inlineRelease releases on the happy path only: a panic in work()
// leaks the lease.
func inlineRelease(ctx context.Context) error {
	lease, err := budget.Acquire(ctx, 2) // want "released without defer"
	if err != nil {
		return err
	}
	work()
	lease.Release()
	return nil
}

// discarded can never be released at all.
func discarded() {
	_, _ = budget.Acquire(context.Background(), 1) // want "assigned to _"
}

// tryDiscarded: same for the non-blocking constructor.
func tryDiscarded() {
	_ = budget.TryAcquire(1) // want "assigned to _"
}

// upToInline: the elastic constructor follows the same rule.
func upToInline(ctx context.Context) error {
	lease, err := budget.AcquireUpTo(ctx, 1, 4) // want "released without defer"
	if err != nil {
		return err
	}
	work()
	lease.Release()
	return nil
}
