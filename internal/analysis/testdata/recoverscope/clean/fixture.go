// Package fixture contains every blessed recoverscope pattern: the one
// sanctioned recover site (loaded as the service layer), deferred
// releases, and the escape shapes where the lease's ownership provably
// moves. None of these produce findings.
package fixture

import (
	"context"

	"zkphire/internal/parallel"
)

var budget = parallel.NewBudget(4)

func work(int) error { return nil }

// runGuarded is the designated job boundary: recover here is the whole
// design.
func runGuarded(lease *parallel.Lease) (err error) {
	defer lease.Release()
	defer func() {
		if r := recover(); r != nil {
			_ = r
			err = context.Canceled
		}
	}()
	return work(lease.Workers())
}

// deferred is the canonical shape.
func deferred(ctx context.Context) error {
	lease, err := budget.Acquire(ctx, 2)
	if err != nil {
		return err
	}
	defer lease.Release()
	return work(lease.Workers())
}

// deferredClosure releases inside a deferred literal — as panic-safe as
// the direct form.
func deferredClosure(ctx context.Context) error {
	lease, err := budget.Acquire(ctx, 2)
	if err != nil {
		return err
	}
	defer func() {
		lease.Release()
	}()
	return work(lease.Workers())
}

// tryDeferred: the nil check on TryAcquire is a neutral read.
func tryDeferred() error {
	lease := budget.TryAcquire(1)
	if lease == nil {
		return context.DeadlineExceeded
	}
	defer lease.Release()
	return work(lease.Workers())
}

// escapesAsValue hands the release duty to the caller as a method value
// (the pipeline's elastic acquire does exactly this).
func escapesAsValue(ctx context.Context) (int, func(), error) {
	lease, err := budget.AcquireUpTo(ctx, 1, 4)
	if err != nil {
		return 0, nil, err
	}
	return lease.Workers(), lease.Release, nil
}

// escapesToCall passes the lease to a callee that now owns it.
func escapesToCall(ctx context.Context) error {
	lease, err := budget.Acquire(ctx, 2)
	if err != nil {
		return err
	}
	return runGuarded(lease)
}

// escapesByReturn returns the lease itself.
func escapesByReturn(ctx context.Context) (*parallel.Lease, error) {
	lease, err := budget.Acquire(ctx, 1)
	if err != nil {
		return nil, err
	}
	return lease, nil
}

// acquiringLiteral: the scope rule anchors to the innermost function, so
// a helper literal with its own defer is clean.
func acquiringLiteral(ctx context.Context) error {
	withLease := func(fn func(int) error) error {
		lease, err := budget.Acquire(ctx, 2)
		if err != nil {
			return err
		}
		defer lease.Release()
		return fn(lease.Workers())
	}
	return withLease(work)
}
