// Package fixture shows the sanctioned concurrency patterns outside
// internal/parallel: stage DAGs via parallel.Stage (every goroutine is
// spawned inside the engine against its worker budget) and futures
// resolved without hand-rolled spawns. None of these are findings.
package fixture

import (
	"context"

	"zkphire/internal/parallel"
)

// stagedPipeline runs a two-stage DAG; the scheduler owns the spawns.
func stagedPipeline(ctx context.Context) (int, error) {
	g := parallel.NewGraph(ctx, 4)
	a := parallel.Stage(g, "produce", parallel.Span(1, 2),
		func(ctx context.Context, workers int) (int, error) {
			return workers, nil
		})
	b := parallel.Stage(g, "consume", parallel.Coordinate(),
		func(ctx context.Context, _ int) (int, error) {
			return a.MustWait() + 1, nil
		}, a)
	if err := g.Wait(); err != nil {
		return 0, err
	}
	return b.MustWait(), nil
}

// fanOut leases per item through the graph's budget — bounded
// concurrency without a single go statement in this package.
func fanOut(ctx context.Context, items []int) ([]int, error) {
	g := parallel.NewGraph(ctx, 2)
	futs := make([]*parallel.Future[int], len(items))
	for i, it := range items {
		futs[i] = parallel.Stage(g, "item", parallel.Span(1, 1),
			func(ctx context.Context, _ int) (int, error) {
				return it * it, nil
			})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	out := make([]int, len(futs))
	for i, f := range futs {
		out[i] = f.MustWait()
	}
	return out, nil
}

// externalResolve completes a future from the current goroutine — a
// future is a result slot, not a licence to spawn.
func externalResolve(v int) *parallel.Future[int] {
	f, resolve := parallel.NewFuture[int]()
	resolve(v, nil)
	return f
}
