// Package fixture spawns raw goroutines outside internal/parallel;
// both the loop and non-loop forms are findings, and resolving a
// parallel.Future from a hand-rolled goroutine is no exemption — the
// future is a result slot, the spawn still escapes the worker budget.
package fixture

import "zkphire/internal/parallel"

func spawn(done chan struct{}) {
	go func() { close(done) }() // want "raw go statement outside internal/parallel"
}

func spawnLoop(ch chan int) {
	for i := 0; i < 4; i++ {
		go func() { ch <- i }() // want "goroutine spawned in a loop outside internal/parallel"
	}
}

func handRolledFuture(v int) *parallel.Future[int] {
	f, resolve := parallel.NewFuture[int]()
	go func() { resolve(v, nil) }() // want "raw go statement outside internal/parallel"
	return f
}

func handRolledFanOut(vs []int) []*parallel.Future[int] {
	futs := make([]*parallel.Future[int], len(vs))
	for i, v := range vs {
		f, resolve := parallel.NewFuture[int]()
		go func() { resolve(v, nil) }() // want "goroutine spawned in a loop outside internal/parallel"
		futs[i] = f
	}
	return futs
}
