// Package fixture spawns raw goroutines outside internal/parallel;
// both the loop and non-loop forms are findings.
package fixture

func spawn(done chan struct{}) {
	go func() { close(done) }() // want "raw go statement outside internal/parallel"
}

func spawnLoop(ch chan int) {
	for i := 0; i < 4; i++ {
		go func() { ch <- i }() // want "goroutine spawned in a loop outside internal/parallel"
	}
}
