// Package fixture exercises every construct the determinism analyzer
// bans. The test loads it under a proof-path import path.
package fixture

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

func mapOrder(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want "range over map has nondeterministic iteration order"
		keys = append(keys, k)
	}
	return keys
}

func clock() int64 {
	t := time.Now() // want "wall-clock reads must never influence proof bytes"
	return t.Unix()
}

func ambient(buf []byte) uint64 {
	crand.Read(buf)      // want "crypto/rand.Read in a proof-path package"
	return rand.Uint64() // want "math/rand.Uint64 in a proof-path package"
}

func racy(a, b chan int) int {
	select { // want "select chooses among ready cases pseudo-randomly"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
