// Package fixture holds constructs the determinism analyzer must NOT
// flag even inside a proof-path package: injected seeded sources and
// ordered iteration.
package fixture

import "math/rand"

// seeded builds an explicit source from a caller-owned seed — the
// dependency-injection seam ff.Rand uses. Methods on the source are
// deterministic and exempt.
func seeded(seed int64) uint64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Uint64()
}

// overSlice iterates a slice, which has a defined order.
func overSlice(keys []string) int {
	n := 0
	for range keys {
		n++
	}
	return n
}
