// Package fixture suppresses a norawgo finding with a well-formed
// directive: analyzer name plus a non-empty reason. Running the full
// suite over it must produce zero diagnostics.
package fixture

func spawn(done chan struct{}) {
	//zkvet:ignore norawgo fixture demonstrates a suppression carrying its mandatory reason
	go func() { close(done) }()
}
