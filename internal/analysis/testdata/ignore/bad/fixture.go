// Package fixture holds malformed //zkvet:ignore directives. Each is
// itself a finding, and none of them suppresses the go statement it
// precedes.
package fixture

func spawnNoReason(done chan struct{}) {
	//zkvet:ignore norawgo
	go func() { close(done) }()
}

func spawnUnknown(done chan struct{}) {
	//zkvet:ignore nosuchpass the analyzer name does not exist
	go func() { close(done) }()
}

func spawnBare(done chan struct{}) {
	//zkvet:ignore
	go func() { close(done) }()
}
