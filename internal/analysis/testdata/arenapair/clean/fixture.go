// Package fixture holds the release patterns the arenapair analyzer
// must accept: defer pairing, branch-scoped pairs, nil-guarded
// lazy Get/Put, alias releases, panic guards, and ownership transfers.
package fixture

import "zkphire/internal/parallel"

var pool parallel.Arena[uint64]

// deferred releases on every exit, early returns included.
func deferred(n int) int {
	buf := parallel.GetScratch(n)
	defer parallel.PutScratch(buf)
	m := len(buf)
	if m > 4 {
		return 4
	}
	return m
}

// branchScoped gets and puts entirely inside one branch.
func branchScoped(n int, have []uint64) int {
	total := len(have)
	if total < n {
		buf := pool.Get(n)
		copy(buf, have)
		total = len(buf)
		pool.Put(buf)
	}
	return total
}

// lazy is the MSM Jacobian-overflow idiom: a conditionally obtained
// buffer released behind the matching nil guard.
func lazy(n int, need bool) {
	var buf []uint64
	if need {
		buf = pool.Get(n)
	}
	if buf != nil {
		buf[0] = 1
	}
	if buf != nil {
		pool.Put(buf)
	}
}

// aliasPut releases through a reslice alias of the buffer.
func aliasPut(n int) {
	buf := pool.Get(n)
	cur := buf[:0]
	for i := 0; i < n; i++ {
		cur = append(cur, uint64(i))
	}
	pool.Put(cur)
}

// guarded panics on a bound violation before the release; panic is a
// terminator, not a leak.
func guarded(n int) {
	buf := pool.Get(n)
	if n > 1<<30 {
		panic("bound")
	}
	pool.Put(buf)
}

type holder struct{ buf []uint64 }

// transfer stores the buffer into a field: ownership moves to the
// holder, which is responsible for the Put.
func transfer(h *holder, n int) {
	h.buf = pool.Get(n)
}

// handoff returns the buffer to the caller, who now owns the Put.
func handoff(n int) []uint64 {
	buf := pool.Get(n)
	return buf
}

// streamHandoff is the streamed-commit chunk pattern: each scratch
// buffer is sent to a consumer stage over a channel, transferring
// ownership; the consumer Puts after feeding the committer.
func streamHandoff(ch chan<- []uint64, n, chunks int) {
	for i := 0; i < chunks; i++ {
		buf := pool.Get(n)
		for j := range buf {
			buf[j] = uint64(i)
		}
		ch <- buf
	}
	close(ch)
}

type chunk struct {
	off int
	buf []uint64
}

// streamHandoffWrapped transfers ownership inside a chunk descriptor —
// the composite literal is the escape, the send just carries it.
func streamHandoffWrapped(ch chan<- chunk, n, off int) {
	buf := pool.Get(n)
	ch <- chunk{off: off, buf: buf}
}

// streamConsume is the receiving half: the loop owns each received
// buffer and returns it to the arena once consumed.
func streamConsume(ch <-chan []uint64) uint64 {
	var total uint64
	for buf := range ch {
		for _, v := range buf {
			total += v
		}
		pool.Put(buf)
	}
	return total
}
