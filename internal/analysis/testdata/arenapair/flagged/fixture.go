// Package fixture contains every arena-pairing violation class the
// arenapair analyzer reports.
package fixture

import "zkphire/internal/parallel"

var pool parallel.Arena[uint64]

func earlyReturn(n int) {
	buf := parallel.GetScratch(n)
	if n > 1<<20 {
		return // want "return leaks buf"
	}
	parallel.PutScratch(buf)
}

func neverPut(n int) {
	buf := parallel.GetScratch(n) // want "never returned to the arena in neverPut"
	_ = buf[0]
}

func dropped(n int) {
	_ = parallel.GetScratch(n) // want "assigned to _ is never returned to the pool"
}

func unassigned(n int) int {
	return len(parallel.GetScratch(n)) // want "not assigned to a variable"
}

func fallThrough(n int, flush bool) {
	buf := pool.Get(n) // want "may reach the end of fallThrough"
	if flush {
		pool.Put(buf)
	}
}
