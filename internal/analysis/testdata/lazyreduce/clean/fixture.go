// Package fixture calls the windowed ff kernels under proper
// compile-time window guards, so nothing is flagged.
package fixture

import "zkphire/internal/ff"

// Chunks in this package are capped at 2^20 elements, far below both
// lazy-reduction windows; the uint conversions turn any future overflow
// of the bound into a compile error.
const (
	maxChunkLog2 = 20
	_            = uint(ff.SumWindowLog2 - maxChunkLog2)
	_            = uint(ff.ProductWindowLog2 - maxChunkLog2)
)

func total(v []ff.Element) ff.Element {
	return ff.SumVec(v)
}

func dot(a, b []ff.Element) ff.Element {
	return ff.InnerProductVec(a, b)
}
