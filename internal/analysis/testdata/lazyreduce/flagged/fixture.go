// Package fixture calls the windowed ff kernels without any
// compile-time window guard, so every call is a finding.
package fixture

import "zkphire/internal/ff"

func total(v []ff.Element) ff.Element {
	return ff.SumVec(v) // want "SumVec accumulates unreduced limbs"
}

func dot(a, b ff.Vector) ff.Element {
	return a.InnerProduct(b) // want "Vector.InnerProduct accumulates unreduced limbs"
}

func accumulate(a, b []ff.Element) ff.Element {
	var acc ff.LazyAcc
	for i := range a {
		acc.MulAcc(&a[i], &b[i]) // want "LazyAcc.MulAcc accumulates unreduced limbs"
	}
	return acc.Reduce()
}
