package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// servicePath is the zkphired service layer, where errors cross an API
// boundary and must stay inspectable with errors.Is/As.
const servicePath = Module + "/internal/service"

// ErrorPath encodes two error-handling contracts:
//
//  1. Never-panic deserialization. Unmarshal entry points
//     (Unmarshal*, *.UnmarshalBinary, *.UnmarshalJSON) consume
//     attacker-controlled bytes — the zkphired service feeds them
//     request bodies directly — so every malformed input must surface
//     as an error, never a panic. The analyzer builds the package-local
//     static call graph and reports any panic, log.Fatal*, or os.Exit
//     call reachable from an Unmarshal root. (Cross-package calls are
//     out of reach of a per-package pass; each layer's own Unmarshal
//     roots cover its own helpers, which in practice is where the
//     length-check-free indexing lives.)
//
//  2. Wrapped errors in the service layer. fmt.Errorf("...: %v", err)
//     severs the error chain right where callers of the proving service
//     need errors.Is to distinguish admission-control rejections from
//     prover failures. An error-typed argument to fmt.Errorf whose
//     format string has no %w verb is a finding.
//
// See DESIGN.md §6.5.
var ErrorPath = &Analyzer{
	Name: "errorpath",
	Doc:  "flag panics reachable from Unmarshal entry points and unwrapped errors in the service layer",
	Run:  runErrorPath,
}

func runErrorPath(pass *Pass) error {
	path := pass.Pkg.Path()
	if !strings.HasPrefix(path, Module+"/") && path != Module {
		return nil
	}
	checkUnmarshalPanics(pass)
	if path == servicePath || path == Module {
		checkErrorWrapping(pass)
	}
	return nil
}

// fatalSite is one statically unacceptable exit in a function body.
type fatalSite struct {
	fn   *types.Func
	call *ast.CallExpr
	what string
}

// checkUnmarshalPanics walks the package-local call graph from
// Unmarshal roots to panic/log.Fatal/os.Exit sites.
func checkUnmarshalPanics(pass *Pass) {
	info := pass.Info

	calls := map[*types.Func][]*types.Func{} // caller -> same-package callees
	var sites []fatalSite
	declOf := map[*types.Func]*ast.FuncDecl{}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			declOf[fn] = fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" && isBuiltin(info, id) {
					sites = append(sites, fatalSite{fn, call, "panic"})
					return true
				}
				obj := calleeObj(info, call)
				switch pkg := objPkgPath(obj); {
				case pkg == "log" && strings.HasPrefix(obj.Name(), "Fatal"):
					sites = append(sites, fatalSite{fn, call, "log." + obj.Name()})
				case pkg == "os" && obj.Name() == "Exit":
					sites = append(sites, fatalSite{fn, call, "os.Exit"})
				case obj != nil && obj.Pkg() == pass.Pkg:
					if callee, ok := obj.(*types.Func); ok {
						calls[fn] = append(calls[fn], callee)
					}
				}
				return true
			})
		}
	}

	// BFS from each Unmarshal root; remember the shortest call chain so
	// the diagnostic can say how the panic is reached.
	var roots []*types.Func
	for fn := range declOf {
		if strings.HasPrefix(fn.Name(), "Unmarshal") {
			roots = append(roots, fn)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].FullName() < roots[j].FullName() })

	reachable := map[*types.Func]string{} // fn -> root it is reachable from
	for _, root := range roots {
		queue := []*types.Func{root}
		seen := map[*types.Func]bool{root: true}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			if _, ok := reachable[fn]; !ok {
				reachable[fn] = root.FullName()
			}
			for _, callee := range calls[fn] {
				if !seen[callee] {
					seen[callee] = true
					queue = append(queue, callee)
				}
			}
		}
	}

	for _, s := range sites {
		root, ok := reachable[s.fn]
		if !ok {
			continue
		}
		pass.Reportf(s.call.Pos(), "%s is reachable from %s: deserialization of untrusted bytes must return an error, never crash the prover", s.what, root)
	}
}

// checkErrorWrapping flags fmt.Errorf calls that stringify an error
// argument without %w.
func checkErrorWrapping(pass *Pass) {
	info := pass.Info
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(info, call)
			if !objIsFunc(obj, "fmt", "", "Errorf") || len(call.Args) < 2 {
				return true
			}
			if tv, ok := info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				if strings.Contains(constant.StringVal(tv.Value), "%w") {
					return true
				}
			} else {
				return true // non-constant format string: nothing to prove
			}
			for _, a := range call.Args[1:] {
				if t := info.TypeOf(a); t != nil && isErrorType(t) {
					pass.Reportf(a.Pos(), "error argument is stringified by fmt.Errorf without %%w: the chain is severed and errors.Is/As stop working at the service boundary")
				}
			}
			return true
		})
	}
}

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
