package pcs

import (
	"testing"

	"zkphire/internal/ff"
	"zkphire/internal/mle"
)

// TestCommitWorkersBudgetIndependent checks that commitments are identical
// (as affine points, hence byte-identical on the wire) for every budget, on
// both the dense and sparse MSM paths.
func TestCommitWorkersBudgetIndependent(t *testing.T) {
	srs := SetupDeterministic(12, 41)
	rng := ff.NewRand(42)
	for name, tab := range map[string]*mle.Table{
		"dense":  mle.FromEvals(rng.Elements(1 << 12)),
		"sparse": mle.FromEvals(rng.SparseElements(1<<12, 0.1)),
	} {
		want, err := srs.CommitWorkers(tab, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 8, 0} {
			got, err := srs.CommitWorkers(tab, w)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Point.Equal(&want.Point) {
				t.Fatalf("%s workers=%d: commitment differs", name, w)
			}
		}
	}
}

func TestOpenWorkersBudgetIndependentAndVerifies(t *testing.T) {
	srs := SetupDeterministic(12, 43)
	rng := ff.NewRand(44)
	tab := mle.FromEvals(rng.Elements(1 << 12))
	z := rng.Elements(12)

	comm, err := srs.Commit(tab)
	if err != nil {
		t.Fatal(err)
	}
	wantVal, wantProof, err := srs.OpenWorkers(tab, z, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8, 0} {
		val, proof, err := srs.OpenWorkers(tab, z, w)
		if err != nil {
			t.Fatal(err)
		}
		if !val.Equal(&wantVal) {
			t.Fatalf("workers=%d: opened value differs", w)
		}
		for i := range wantProof.Qs {
			if !proof.Qs[i].Equal(&wantProof.Qs[i]) {
				t.Fatalf("workers=%d: witness commitment %d differs", w, i)
			}
		}
		if err := srs.Verify(comm, z, val, proof); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
	}
}

func TestCombineTablesWorkersMatchesSerial(t *testing.T) {
	rng := ff.NewRand(45)
	tables := []*mle.Table{
		mle.FromEvals(rng.Elements(1 << 12)),
		mle.FromEvals(rng.Elements(1 << 12)),
		mle.FromEvals(rng.Elements(1 << 12)),
	}
	coeffs := rng.Elements(3)
	want, err := CombineTables(tables, coeffs)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 0} {
		got, err := CombineTablesWorkers(tables, coeffs, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Evals {
			if !got.Evals[i].Equal(&want.Evals[i]) {
				t.Fatalf("workers=%d: mismatch at %d", w, i)
			}
		}
	}
}
