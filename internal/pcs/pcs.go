// Package pcs implements a multilinear polynomial commitment scheme in the
// style of PST13/multilinear-KZG — the commitment scheme HyperPlonk pairs
// with its SumCheck IOP.
//
// Committing to a µ-variable MLE is an MSM of its 2^µ evaluations against a
// Lagrange-basis SRS; opening at a point z produces µ witness commitments
// (one per variable) via the telescoping identity
//
//	f(X) − f(z) = Σ_i (X_i − z_i)·q_i(X_{i+1..µ}).
//
// SUBSTITUTION (documented in DESIGN.md): the paper's testbed verifies
// openings with a BLS12-381 pairing. This reproduction keeps the trapdoor τ
// from its *simulated* trusted setup and checks the algebraically identical
// group equation
//
//	C − y·G = Σ_i (τ_i − z_i)·Π_i
//
// in G1 directly. The prover side — every MSM the zkPHIRE hardware
// accelerates — is bit-identical to the pairing-based scheme.
package pcs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"zkphire/internal/curve"
	"zkphire/internal/ff"
	"zkphire/internal/fp"
	"zkphire/internal/mle"
	"zkphire/internal/parallel"
)

// SRS is the structured reference string for up to MaxVars variables.
type SRS struct {
	MaxVars int
	// Levels[k] is the Lagrange commitment basis for k-variable MLEs:
	// Levels[k][x] = eq(x, τ[MaxVars-k:])·G for x ∈ {0,1}^k.
	Levels [][]curve.G1Affine
	// Tau is the simulation trapdoor, retained for trapdoor verification in
	// place of the pairing check.
	Tau []ff.Element
	// G is the group generator.
	G curve.G1Affine

	// endo lazily caches, per level, the GLV φ-table of the commitment
	// basis (x-coordinates only — φ(P) = (βx, y) shares y with P, see
	// curve.EndoPoints). Every MSM in CommitWorkers/OpenWorkers runs
	// against it, so βx is computed once per SRS level, not once per call;
	// sessions and the serving layer share the SRS and therefore the
	// tables.
	endoMu sync.Mutex
	endo   [][]fp.Element

	// back, when non-nil, is the offloaded-SRS backing (see Offload in
	// offload.go): large levels live in a spill store and Levels[k] is nil
	// for them; every commit/open path routes basis access through it.
	back *backing
}

// EndoPoints returns the φ-table for the k-variable commitment basis,
// building and caching it on first use (single-flight under a mutex; the
// build itself runs on the given worker budget). The returned slice is
// shared and must be treated as read-only. Only valid for resident levels —
// an offloaded level's φ-table lives in the backing cache and is reached
// through the routed commit/open paths instead.
func (s *SRS) EndoPoints(k, workers int) []fp.Element {
	if s.Levels[k] == nil {
		panic("pcs: EndoPoints on an offloaded SRS level — use the commit/open paths, which route through the backing cache")
	}
	s.endoMu.Lock()
	defer s.endoMu.Unlock()
	if s.endo == nil {
		s.endo = make([][]fp.Element, len(s.Levels))
	}
	if s.endo[k] == nil {
		s.endo[k] = curve.EndoPointsWorkers(s.Levels[k], workers)
	}
	return s.endo[k]
}

// WarmEndo builds and returns the φ-tables for every level up to maxLevel.
// Preprocessing calls it so a session's first Prove never pays the lazy
// build; the returned set is the one stored in the preprocessed key.
// Offloaded levels are skipped (their entry stays nil): pinning a full
// φ-table set would defeat the memory bound the offload exists for — those
// levels' tables live in the bounded backing cache instead.
func (s *SRS) WarmEndo(maxLevel, workers int) [][]fp.Element {
	if maxLevel > s.MaxVars {
		maxLevel = s.MaxVars
	}
	out := make([][]fp.Element, maxLevel+1)
	for k := 0; k <= maxLevel; k++ {
		if s.Levels[k] == nil {
			continue
		}
		out[k] = s.EndoPoints(k, workers)
	}
	return out
}

// Commitment is a hiding-free binding commitment to an MLE.
type Commitment struct {
	Point   curve.G1Affine
	NumVars int
}

// OpeningProof holds the µ witness commitments for one point opening.
type OpeningProof struct {
	Qs []curve.G1Affine
}

// Setup generates an SRS for MLEs of up to maxVars variables. Randomness is
// read from rng (crypto/rand in production, a seeded reader in tests).
func Setup(maxVars int, rng io.Reader) (*SRS, error) {
	if maxVars < 1 || maxVars > 26 {
		return nil, fmt.Errorf("pcs: unsupported variable count %d", maxVars)
	}
	tau := make([]ff.Element, maxVars)
	for i := range tau {
		if _, err := tau[i].SetRandom(rng); err != nil {
			return nil, err
		}
	}
	return setupWithTau(maxVars, tau), nil
}

// SetupDeterministic builds an SRS from a seed; for tests and benchmarks.
func SetupDeterministic(maxVars int, seed int64) *SRS {
	rng := ff.NewRand(seed)
	tau := rng.Elements(maxVars)
	return setupWithTau(maxVars, tau)
}

func setupWithTau(maxVars int, tau []ff.Element) *SRS {
	g := curve.Generator()
	// One fixed-base table serves every level; its window is sized for the
	// Σ_k 2^k ≈ 2^{maxVars+1} scalar multiplications below, and MulMany
	// fans the per-scalar work over the machine.
	fb := curve.NewFixedBaseTableSized(g, 2<<uint(maxVars))
	srs := &SRS{MaxVars: maxVars, Tau: tau, G: g, Levels: make([][]curve.G1Affine, maxVars+1)}
	for k := 0; k <= maxVars; k++ {
		suffix := tau[maxVars-k:]
		eq := mle.EqWorkers(suffix, 0)
		srs.Levels[k] = fb.MulMany(eq.Evals)
	}
	return srs
}

// tauSuffix returns the trapdoor coordinates used by a k-variable MLE.
func (s *SRS) tauSuffix(k int) []ff.Element { return s.Tau[s.MaxVars-k:] }

// Commit commits to an MLE with the full machine. Sparse tables
// automatically take the Sparse MSM path (the hardware's witness-commitment
// mode).
func (s *SRS) Commit(t *mle.Table) (Commitment, error) {
	return s.CommitWorkers(t, 0)
}

// CommitWorkers is Commit with an explicit worker budget (<= 0 means
// GOMAXPROCS). The resulting commitment is identical for every budget.
func (s *SRS) CommitWorkers(t *mle.Table, workers int) (Commitment, error) {
	k := t.NumVars
	if k > s.MaxVars {
		return Commitment{}, fmt.Errorf("pcs: table has %d vars, SRS supports %d", k, s.MaxVars)
	}
	if s.Levels[k] == nil {
		return s.commitBacked(nil, t, workers)
	}
	basis := s.Levels[k]
	endoX := s.EndoPoints(k, workers)
	sp := t.AnalyzeSparsityWorkers(workers)
	var acc curve.G1Jac
	if sp.DenseFraction() < 0.5 {
		acc = curve.SparseMSMEndoWorkers(basis, endoX, t.Evals, workers)
	} else {
		acc = curve.MSMEndoWorkers(basis, endoX, t.Evals, workers)
	}
	var aff curve.G1Affine
	aff.FromJacobian(&acc)
	return Commitment{Point: aff, NumVars: k}, nil
}

// Open produces an evaluation proof for t at point z, returning the value
// f(z) and the witness commitments. It uses the full machine.
func (s *SRS) Open(t *mle.Table, z []ff.Element) (ff.Element, *OpeningProof, error) {
	return s.OpenWorkers(t, z, 0)
}

// OpenWorkers is Open with an explicit worker budget. The quotient tables
// live in pooled arena scratch (no per-level allocation), the quotient
// construction and folds are chunked, and each level's witness MSM runs on
// the same budget.
func (s *SRS) OpenWorkers(t *mle.Table, z []ff.Element, workers int) (ff.Element, *OpeningProof, error) {
	return s.openWorkers(nil, t, z, workers)
}

// openWorkers is the shared Open core; ctx may be nil (never cancelled).
func (s *SRS) openWorkers(ctx context.Context, t *mle.Table, z []ff.Element, workers int) (ff.Element, *OpeningProof, error) {
	return s.OpenElasticCtx(ctx, t, z, func() (int, func(), error) { return workers, func() {}, nil })
}

// OpenElasticCtx is openWorkers with a per-level worker lease: before each
// fold level (one quotient scan, one witness MSM, one fold) it calls
// acquire, runs the level on the granted width, and calls the returned
// release. The pipelined prover's witness-chain stages use it to pick up
// workers a drained sibling stage frees mid-chain, instead of running the
// whole halving chain at their launch-time width. Worker counts never
// change results (DESIGN.md §2), so the proof is identical to OpenWorkers
// at any grant sequence.
func (s *SRS) OpenElasticCtx(ctx context.Context, t *mle.Table, z []ff.Element, acquire func() (int, func(), error)) (ff.Element, *OpeningProof, error) {
	k := t.NumVars
	if len(z) != k {
		return ff.Element{}, nil, fmt.Errorf("pcs: point arity %d for %d-var table", len(z), k)
	}
	if k > s.MaxVars {
		return ff.Element{}, nil, fmt.Errorf("pcs: table too large for SRS")
	}
	if k == 0 {
		return t.Evals[0], &OpeningProof{}, nil
	}
	// Working copy of the evaluations in arena scratch (the fold below is
	// destructive); q shares a second scratch buffer across levels.
	work := parallel.GetScratch(t.Size())
	qBuf := parallel.GetScratch(t.Size() / 2)
	defer parallel.PutScratch(work)
	defer parallel.PutScratch(qBuf)

	workers, release, err := acquire()
	if err != nil {
		return ff.Element{}, nil, err
	}
	src := t.Evals
	parallel.For(workers, len(src), func(lo, hi int) {
		copy(work[lo:hi], src[lo:hi])
	})
	release()

	cur := mle.FromEvals(work)
	proof := &OpeningProof{Qs: make([]curve.G1Affine, k)}
	for i := 0; i < k; i++ {
		workers, release, err := acquire()
		if err != nil {
			return ff.Element{}, nil, err
		}
		half := cur.Size() / 2
		q := qBuf[:half]
		evals := cur.Evals
		parallel.For(workers, half, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				q[j].Sub(&evals[2*j+1], &evals[2*j])
			}
		})
		acc, err := s.msmRangeCtx(ctx, k-i-1, 0, q, workers, false)
		if err != nil {
			release()
			return ff.Element{}, nil, err
		}
		proof.Qs[i].FromJacobian(&acc)
		cur.FoldWorkers(&z[i], workers)
		release()
	}
	return cur.Evals[0], proof, nil
}

// ErrVerify reports an invalid opening.
var ErrVerify = errors.New("pcs: opening verification failed")

// Verify checks that commitment c opens to value y at point z.
//
// Trapdoor-mode check of the pairing identity: C − y·G = Σ (τ_i − z_i)·Π_i.
func (s *SRS) Verify(c Commitment, z []ff.Element, y ff.Element, proof *OpeningProof) error {
	k := c.NumVars
	if len(z) != k || len(proof.Qs) != k {
		return fmt.Errorf("pcs: arity mismatch in verification")
	}
	suffix := s.tauSuffix(k)

	var lhs curve.G1Jac
	lhs.FromAffine(&c.Point)
	var yNeg ff.Element
	yNeg.Neg(&y)
	var gJ, yG curve.G1Jac
	gJ.FromAffine(&s.G)
	yG.ScalarMul(&gJ, &yNeg)
	lhs.AddAssign(&yG)

	// RHS = Σ (τ_i − z_i)·Q_i via one MSM.
	scalars := make([]ff.Element, k)
	for i := 0; i < k; i++ {
		scalars[i].Sub(&suffix[i], &z[i])
	}
	rhs := curve.MSM(proof.Qs, scalars)

	if !lhs.Equal(&rhs) {
		return ErrVerify
	}
	return nil
}

// CombineCommitments returns Σ coeffs[i]·cs[i]; all commitments must share
// the same arity. Used for batched single-point openings.
func CombineCommitments(cs []Commitment, coeffs []ff.Element) (Commitment, error) {
	if len(cs) == 0 || len(cs) != len(coeffs) {
		return Commitment{}, fmt.Errorf("pcs: bad combination arity")
	}
	k := cs[0].NumVars
	points := make([]curve.G1Affine, len(cs))
	for i := range cs {
		if cs[i].NumVars != k {
			return Commitment{}, fmt.Errorf("pcs: mixed arity in combination")
		}
		points[i] = cs[i].Point
	}
	acc := curve.MSM(points, coeffs)
	var aff curve.G1Affine
	aff.FromJacobian(&acc)
	return Commitment{Point: aff, NumVars: k}, nil
}

// CombineTablesWorkers' per-entry ff.LazyAcc gathers one 512-bit
// product per table before reducing, sound below ff's 2^66-product
// window (DESIGN.md §5). tables is a single Go slice, so the count is
// below 2^63; if the window ever shrinks under that bound this constant
// goes negative and the package stops compiling. zkvet's lazyreduce
// analyzer requires this guard in every package calling a windowed
// kernel.
const _ = uint(ff.ProductWindowLog2 - 63)

// CombineTables returns Σ coeffs[i]·tables[i] as a new table.
func CombineTables(tables []*mle.Table, coeffs []ff.Element) (*mle.Table, error) {
	return CombineTablesWorkers(tables, coeffs, 1)
}

// CombineTablesWorkers is CombineTables with a worker budget; entries are
// independent, so the combination chunks over the evaluation index. Within a
// chunk each output entry is one lazy-reduction inner product across the
// tables: the raw 512-bit products Σᵢ coeffsᵢ·tablesᵢ[j] accumulate
// unreduced and pay a single Montgomery reduction per entry instead of one
// per (table, entry) pair.
func CombineTablesWorkers(tables []*mle.Table, coeffs []ff.Element, workers int) (*mle.Table, error) {
	if len(tables) == 0 || len(tables) != len(coeffs) {
		return nil, fmt.Errorf("pcs: bad combination arity")
	}
	out := mle.New(tables[0].NumVars)
	for _, t := range tables {
		if t.NumVars != out.NumVars {
			return nil, fmt.Errorf("pcs: mixed arity in table combination")
		}
	}
	parallel.For(workers, out.Size(), func(lo, hi int) {
		cols := make([][]ff.Element, len(tables))
		for i, t := range tables {
			cols[i] = t.Evals
		}
		for j := lo; j < hi; j++ {
			// One accumulator gathers len(tables) 512-bit products
			// before its single Reduce; tables is a Go slice, so the
			// count stays below 2^63 — inside the 2^66-product window
			// the guard above ties to DESIGN.md §5.
			var acc ff.LazyAcc
			for i := range cols {
				acc.MulAcc(&coeffs[i], &cols[i][j])
			}
			out.Evals[j] = acc.Reduce()
		}
	})
	return out, nil
}
