package pcs

import (
	"context"
	"sync"
	"testing"

	"zkphire/internal/ff"
	"zkphire/internal/mle"
)

// TestOffloadByteIdentical offloads an SRS mid-test and checks that every
// commit/open path produces results identical to the in-core ones computed
// moments before on the same (then-resident) levels. maxVars 13 makes the
// top level ~1.2 MB in RAM — larger than half the minimum cache budget — so
// the top-level commitment exercises the chunk-streamed MSM, while the
// opening chain's shrinking levels exercise the whole-level cache.
func TestOffloadByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("offload identity test builds a 2^13 SRS")
	}
	const nv = 13
	srs := SetupDeterministic(nv, 99)
	rng := ff.NewRand(123)
	dense := mle.FromEvals(rng.Elements(1 << nv))
	sparse := mle.New(nv)
	for i := 0; i < len(sparse.Evals); i += 17 {
		sparse.Evals[i] = rng.Element()
	}
	z := rng.Elements(nv)

	denseComm, err := srs.Commit(dense)
	if err != nil {
		t.Fatal(err)
	}
	sparseComm, err := srs.Commit(sparse)
	if err != nil {
		t.Fatal(err)
	}
	openVal, openProof, err := srs.Open(dense, z)
	if err != nil {
		t.Fatal(err)
	}

	if err := srs.Offload(t.TempDir(), 1); err != nil { // clamps to the 8 MiB floor
		t.Fatalf("Offload: %v", err)
	}
	if !srs.Backed() {
		t.Fatal("SRS not backed after Offload")
	}
	if srs.Levels[nv] != nil {
		t.Fatal("top level still resident after Offload")
	}

	denseComm2, err := srs.Commit(dense)
	if err != nil {
		t.Fatalf("backed dense commit: %v", err)
	}
	if !denseComm2.Point.Equal(&denseComm.Point) {
		t.Fatal("backed dense commitment differs from in-core")
	}
	sparseComm2, err := srs.CommitCtx(context.Background(), sparse, 2)
	if err != nil {
		t.Fatalf("backed sparse commit: %v", err)
	}
	if !sparseComm2.Point.Equal(&sparseComm.Point) {
		t.Fatal("backed sparse commitment differs from in-core")
	}

	openVal2, openProof2, err := srs.OpenWorkers(dense, z, 2)
	if err != nil {
		t.Fatalf("backed open: %v", err)
	}
	if !openVal2.Equal(&openVal) {
		t.Fatal("backed opening value differs")
	}
	for i := range openProof.Qs {
		if !openProof2.Qs[i].Equal(&openProof.Qs[i]) {
			t.Fatalf("backed witness commitment %d differs", i)
		}
	}
	if err := srs.Verify(denseComm2, z, openVal2, openProof2); err != nil {
		t.Fatalf("verify on backed SRS: %v", err)
	}

	// Streamed commitment over backed basis: feed out-of-order segments of
	// mixed sizes (chunked partial MSMs + the gather path).
	sc, err := srs.CommitStream(nv)
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << nv
	segs := [][2]int{{n / 2, n}, {100, n / 2}, {0, 100}}
	for _, seg := range segs {
		if err := sc.Feed(context.Background(), seg[0], dense.Evals[seg[0]:seg[1]], 2); err != nil {
			t.Fatalf("Feed(%v): %v", seg, err)
		}
	}
	streamComm, err := sc.Finish(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !streamComm.Point.Equal(&denseComm.Point) {
		t.Fatal("streamed commitment on backed SRS differs from in-core")
	}

	// The cache respects its byte budget once nothing is pinned.
	b := srs.back
	b.mu.Lock()
	resident, budget := b.resident, b.cacheBudget
	for k := range b.lev {
		if b.lev[k].pins != 0 {
			t.Errorf("level %d still pinned (%d)", k, b.lev[k].pins)
		}
	}
	b.mu.Unlock()
	if resident > budget {
		t.Fatalf("cache resident %d exceeds budget %d", resident, budget)
	}

	// Concurrent backed commits share the single-flight cache safely and
	// agree with the in-core result.
	var wg sync.WaitGroup
	errs := make([]error, 4)
	comms := make([]Commitment, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			comms[i], errs[i] = srs.CommitWorkers(dense, 1)
		}(i)
	}
	wg.Wait()
	for i := range comms {
		if errs[i] != nil {
			t.Fatalf("concurrent commit %d: %v", i, errs[i])
		}
		if !comms[i].Point.Equal(&denseComm.Point) {
			t.Fatalf("concurrent commit %d differs", i)
		}
	}

	// After CloseBacking, offloaded levels error out — no panics.
	if err := srs.CloseBacking(); err != nil {
		t.Fatalf("CloseBacking: %v", err)
	}
	if _, err := srs.Commit(dense); err == nil {
		t.Fatal("commit on closed backing succeeded")
	}
}

// TestOffloadIdempotent checks double-Offload is a no-op and small levels
// stay resident.
func TestOffloadIdempotent(t *testing.T) {
	srs := SetupDeterministic(8, 5)
	if err := srs.Offload(t.TempDir(), 64<<20); err != nil {
		t.Fatal(err)
	}
	// 2^8 levels are all under smallLevelElems: everything stays resident.
	for k := range srs.Levels {
		if srs.Levels[k] == nil {
			t.Fatalf("small level %d offloaded", k)
		}
	}
	if err := srs.Offload(t.TempDir(), 1<<20); err != nil {
		t.Fatalf("second Offload: %v", err)
	}
	rng := ff.NewRand(1)
	tab := mle.FromEvals(rng.Elements(1 << 8))
	if _, err := srs.Commit(tab); err != nil {
		t.Fatal(err)
	}
	if err := srs.CloseBacking(); err != nil {
		t.Fatal(err)
	}
}
