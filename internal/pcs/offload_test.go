package pcs

import (
	"context"
	"errors"
	"sync"
	"testing"

	"zkphire/internal/curve"
	"zkphire/internal/faultinject"
	"zkphire/internal/ff"
	"zkphire/internal/mle"
	"zkphire/internal/spill"
)

// TestOffloadByteIdentical offloads an SRS mid-test and checks that every
// commit/open path produces results identical to the in-core ones computed
// moments before on the same (then-resident) levels. maxVars 13 makes the
// top level ~1.2 MB in RAM — larger than half the minimum cache budget — so
// the top-level commitment exercises the chunk-streamed MSM, while the
// opening chain's shrinking levels exercise the whole-level cache.
func TestOffloadByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("offload identity test builds a 2^13 SRS")
	}
	const nv = 13
	srs := SetupDeterministic(nv, 99)
	rng := ff.NewRand(123)
	dense := mle.FromEvals(rng.Elements(1 << nv))
	sparse := mle.New(nv)
	for i := 0; i < len(sparse.Evals); i += 17 {
		sparse.Evals[i] = rng.Element()
	}
	z := rng.Elements(nv)

	denseComm, err := srs.Commit(dense)
	if err != nil {
		t.Fatal(err)
	}
	sparseComm, err := srs.Commit(sparse)
	if err != nil {
		t.Fatal(err)
	}
	openVal, openProof, err := srs.Open(dense, z)
	if err != nil {
		t.Fatal(err)
	}

	if err := srs.Offload(t.TempDir(), 1); err != nil { // clamps to the 8 MiB floor
		t.Fatalf("Offload: %v", err)
	}
	if !srs.Backed() {
		t.Fatal("SRS not backed after Offload")
	}
	if srs.Levels[nv] != nil {
		t.Fatal("top level still resident after Offload")
	}

	denseComm2, err := srs.Commit(dense)
	if err != nil {
		t.Fatalf("backed dense commit: %v", err)
	}
	if !denseComm2.Point.Equal(&denseComm.Point) {
		t.Fatal("backed dense commitment differs from in-core")
	}
	sparseComm2, err := srs.CommitCtx(context.Background(), sparse, 2)
	if err != nil {
		t.Fatalf("backed sparse commit: %v", err)
	}
	if !sparseComm2.Point.Equal(&sparseComm.Point) {
		t.Fatal("backed sparse commitment differs from in-core")
	}

	openVal2, openProof2, err := srs.OpenWorkers(dense, z, 2)
	if err != nil {
		t.Fatalf("backed open: %v", err)
	}
	if !openVal2.Equal(&openVal) {
		t.Fatal("backed opening value differs")
	}
	for i := range openProof.Qs {
		if !openProof2.Qs[i].Equal(&openProof.Qs[i]) {
			t.Fatalf("backed witness commitment %d differs", i)
		}
	}
	if err := srs.Verify(denseComm2, z, openVal2, openProof2); err != nil {
		t.Fatalf("verify on backed SRS: %v", err)
	}

	// Streamed commitment over backed basis: feed out-of-order segments of
	// mixed sizes (chunked partial MSMs + the gather path).
	sc, err := srs.CommitStream(nv)
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << nv
	segs := [][2]int{{n / 2, n}, {100, n / 2}, {0, 100}}
	for _, seg := range segs {
		if err := sc.Feed(context.Background(), seg[0], dense.Evals[seg[0]:seg[1]], 2); err != nil {
			t.Fatalf("Feed(%v): %v", seg, err)
		}
	}
	streamComm, err := sc.Finish(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !streamComm.Point.Equal(&denseComm.Point) {
		t.Fatal("streamed commitment on backed SRS differs from in-core")
	}

	// The cache respects its byte budget once nothing is pinned.
	b := srs.back
	b.mu.Lock()
	resident, budget := b.resident, b.cacheBudget
	for k := range b.lev {
		if b.lev[k].pins != 0 {
			t.Errorf("level %d still pinned (%d)", k, b.lev[k].pins)
		}
	}
	b.mu.Unlock()
	if resident > budget {
		t.Fatalf("cache resident %d exceeds budget %d", resident, budget)
	}

	// Concurrent backed commits share the single-flight cache safely and
	// agree with the in-core result.
	var wg sync.WaitGroup
	errs := make([]error, 4)
	comms := make([]Commitment, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			comms[i], errs[i] = srs.CommitWorkers(dense, 1)
		}(i)
	}
	wg.Wait()
	for i := range comms {
		if errs[i] != nil {
			t.Fatalf("concurrent commit %d: %v", i, errs[i])
		}
		if !comms[i].Point.Equal(&denseComm.Point) {
			t.Fatalf("concurrent commit %d differs", i)
		}
	}

	// After CloseBacking, offloaded levels error out — no panics.
	if err := srs.CloseBacking(); err != nil {
		t.Fatalf("CloseBacking: %v", err)
	}
	if _, err := srs.Commit(dense); err == nil {
		t.Fatal("commit on closed backing succeeded")
	}
}

// TestOffloadIdempotent checks double-Offload is a no-op and small levels
// stay resident.
func TestOffloadIdempotent(t *testing.T) {
	srs := SetupDeterministic(8, 5)
	if err := srs.Offload(t.TempDir(), 64<<20); err != nil {
		t.Fatal(err)
	}
	// 2^8 levels are all under smallLevelElems: everything stays resident.
	for k := range srs.Levels {
		if srs.Levels[k] == nil {
			t.Fatalf("small level %d offloaded", k)
		}
	}
	if err := srs.Offload(t.TempDir(), 1<<20); err != nil {
		t.Fatalf("second Offload: %v", err)
	}
	rng := ff.NewRand(1)
	tab := mle.FromEvals(rng.Elements(1 << 8))
	if _, err := srs.Commit(tab); err != nil {
		t.Fatal(err)
	}
	if err := srs.CloseBacking(); err != nil {
		t.Fatal(err)
	}
}

// offloadLevelForTest spills level k of a small SRS into a fresh store and
// drops the resident copy, regardless of the smallLevelElems threshold, so
// single-flight cache tests run on a cheap 2^6 setup instead of a 2^13 one.
func offloadLevelForTest(t *testing.T, srs *SRS, k int) {
	t.Helper()
	store, err := spill.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	b := &backing{store: store, ownStore: true, cacheBudget: 64 << 20, lev: make([]levelEntry, len(srs.Levels))}
	b.chunkElems = chunkElemsFor(b.cacheBudget)
	if err := b.writeLevel(k, srs.Levels[k]); err != nil {
		t.Fatal(err)
	}
	srs.endoMu.Lock()
	srs.Levels[k] = nil
	if srs.endo != nil {
		srs.endo[k] = nil
	}
	srs.endoMu.Unlock()
	srs.back = b
}

// TestAcquireLevelErrorNotCached pins the single-flight failure contract: a
// load that dies on a transient read error reports it to that attempt's
// callers only, and the very next acquire runs a fresh load and succeeds.
func TestAcquireLevelErrorNotCached(t *testing.T) {
	const k = 6
	srs := SetupDeterministic(k, 11)
	want := append([]curve.G1Affine(nil), srs.Levels[k]...)
	offloadLevelForTest(t, srs, k)
	defer srs.CloseBacking()

	faultinject.Reset()
	defer faultinject.Reset()
	faultinject.Arm("pcs.offload.read", faultinject.Fault{Mode: faultinject.ModeError, Count: 1})

	_, _, _, err := srs.acquireLevel(context.Background(), k, 1)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("first acquire = %v, want injected error", err)
	}
	srs.back.mu.Lock()
	if srs.back.lev[k].flight != nil {
		t.Fatal("failed flight left behind")
	}
	if srs.back.lev[k].pts != nil {
		t.Fatal("failed load cached points")
	}
	srs.back.mu.Unlock()

	// The error was not cached: the next caller reloads and succeeds.
	pts, endo, release, err := srs.acquireLevel(context.Background(), k, 1)
	if err != nil {
		t.Fatalf("acquire after transient failure: %v", err)
	}
	defer release()
	if len(pts) != len(want) || len(endo) != len(want) {
		t.Fatalf("reloaded level sized %d/%d, want %d", len(pts), len(endo), len(want))
	}
	for i := range want {
		if !pts[i].Equal(&want[i]) {
			t.Fatalf("reloaded point %d differs from pre-offload basis", i)
		}
	}
}

// TestAcquireLevelConcurrentFailure hammers a fail-once level from many
// goroutines: every failure is the injected error (never a stale cached
// one), the survivors agree on the loaded points, and a final serial
// acquire always succeeds.
func TestAcquireLevelConcurrentFailure(t *testing.T) {
	const k = 6
	srs := SetupDeterministic(k, 12)
	offloadLevelForTest(t, srs, k)
	defer srs.CloseBacking()

	faultinject.Reset()
	defer faultinject.Reset()
	faultinject.Arm("pcs.offload.read", faultinject.Fault{Mode: faultinject.ModeError, Count: 1})

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, release, err := srs.acquireLevel(context.Background(), k, 1)
			if err == nil {
				release()
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil && !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("goroutine %d: unexpected error %v", i, err)
		}
	}
	if _, _, release, err := srs.acquireLevel(context.Background(), k, 1); err != nil {
		t.Fatalf("serial acquire after concurrent failure round: %v", err)
	} else {
		release()
	}
}

// TestAcquireLevelJoinerHonoursContext: a caller waiting on someone else's
// flight must abandon the wait when its own context dies, without
// disturbing the flight.
func TestAcquireLevelJoinerHonoursContext(t *testing.T) {
	const k = 6
	srs := SetupDeterministic(k, 13)
	offloadLevelForTest(t, srs, k)
	defer srs.CloseBacking()

	// Park a fake flight so the joiner has something to wait on.
	b := srs.back
	f := &levelFlight{done: make(chan struct{})}
	b.mu.Lock()
	b.lev[k].flight = f
	b.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := srs.acquireLevel(ctx, k, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled joiner = %v, want context.Canceled", err)
	}

	// Settle the fake flight as a failure; the level must still load fresh.
	b.mu.Lock()
	b.lev[k].flight = nil
	b.mu.Unlock()
	close(f.done)
	if _, _, release, err := srs.acquireLevel(context.Background(), k, 1); err != nil {
		t.Fatalf("acquire after abandoned flight: %v", err)
	} else {
		release()
	}
}
