package pcs

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"

	"zkphire/internal/curve"
	"zkphire/internal/faultinject"
	"zkphire/internal/ff"
	"zkphire/internal/fp"
	"zkphire/internal/mle"
	"zkphire/internal/parallel"
	"zkphire/internal/spill"
)

// The offloaded-SRS backing layer. Offload spills the large commitment-basis
// levels to an internal/spill store and serves them back on demand through a
// bounded cache:
//
//   - whole levels that fit half the cache budget load with single-flight
//     fetch per level, pin while in use, and evict LRU when the resident
//     bytes exceed the budget;
//   - larger levels never materialize: the MSM paths stream fixed-size basis
//     chunks through arena scratch, computing each chunk's GLV φ-table on
//     the fly (curve.EndoPointsInto).
//
// Group addition is exact and associative and FromJacobian is canonical, so
// every chunked MSM below produces the commitment byte-identical to the
// in-core path regardless of chunk geometry, cache state, or worker budget.

// smallLevelElems is the largest level kept resident by Offload: levels of
// at most 2^12 points total under ~1.3 MB across the whole SRS, and the
// opening chain's deep levels would otherwise pay an I/O round trip for
// microscopic MSMs.
const smallLevelElems = 1 << 12

// pointBytes is the on-disk size of one basis point: X and Y limbs
// little-endian plus an infinity flag.
const pointBytes = 2*fp.Limbs*8 + 1

// pointMemBytes/endoMemBytes approximate the in-RAM cost per cached basis
// point (G1Affine with padding, and its φ-table x-coordinate).
const (
	pointMemBytes = 104
	endoMemBytes  = 48
)

type levelEntry struct {
	pts  []curve.G1Affine
	endo []fp.Element
	pins int
	use  int64
	// flight is the in-progress load, if any: concurrent acquirers of a
	// missing level share one fetch. The flight is removed the moment the
	// load settles — on failure the error reaches only the callers that
	// were already waiting on that attempt, and the next caller starts a
	// fresh load. An error result is never cached: a transient spill read
	// failure must not poison the level for the life of the process.
	flight *levelFlight
}

// levelFlight is one single-flight load of an offloaded level.
type levelFlight struct {
	done chan struct{}
	err  error
}

type backing struct {
	store       *spill.Store
	ownStore    bool
	cacheBudget int64
	chunkElems  int

	mu       sync.Mutex
	lev      []levelEntry
	tick     int64
	resident int64
}

func levelMemBytes(k int) int64 {
	return int64(pointMemBytes+endoMemBytes) << uint(k)
}

// Offload spills every commitment-basis level larger than smallLevelElems
// points into a spill store rooted at dir (empty = a private temp directory)
// and frees the in-RAM copies, including their cached φ-tables. Afterwards
// the SRS serves basis data through a cache bounded by cacheBudget bytes;
// all commit/open paths work unchanged and produce byte-identical results.
//
// Offload is idempotent (the first call's parameters win) and must not run
// concurrently with proofs on this SRS: callers offload before proving.
// The backing files live until CloseBacking or process exit.
func (s *SRS) Offload(dir string, cacheBudget int64) error {
	if s.back != nil {
		return nil
	}
	const minCacheBudget = 1 << 20
	if cacheBudget < minCacheBudget {
		cacheBudget = minCacheBudget
	}
	store, err := spill.NewStore(dir)
	if err != nil {
		return err
	}
	b := &backing{store: store, ownStore: true, cacheBudget: cacheBudget, lev: make([]levelEntry, len(s.Levels))}
	b.chunkElems = chunkElemsFor(cacheBudget)
	for k := range s.Levels {
		if len(s.Levels[k]) <= smallLevelElems {
			continue
		}
		if err := b.writeLevel(k, s.Levels[k]); err != nil {
			store.Close()
			return err
		}
	}
	// Point of no return: drop the in-RAM levels and their φ-tables.
	s.endoMu.Lock()
	for k := range s.Levels {
		if len(s.Levels[k]) > smallLevelElems {
			s.Levels[k] = nil
			if s.endo != nil {
				s.endo[k] = nil
			}
		}
	}
	s.endoMu.Unlock()
	s.back = b
	return nil
}

// Backed reports whether Offload has run.
func (s *SRS) Backed() bool { return s.back != nil }

// CloseBacking removes the backing store. The SRS can no longer serve
// offloaded levels afterwards — only for teardown in tests and short-lived
// processes that own the SRS outright.
func (s *SRS) CloseBacking() error {
	if s.back == nil {
		return nil
	}
	b := s.back
	s.back = nil
	if b.ownStore {
		return b.store.Close()
	}
	return nil
}

// chunkElemsFor sizes the streamed-MSM basis chunk so one chunk's points,
// φ-table, and staging bytes stay well inside the cache budget: an eighth
// of the budget, clamped to [2^12, 2^20] points.
func chunkElemsFor(cacheBudget int64) int {
	n := cacheBudget / 8 / (pointMemBytes + endoMemBytes)
	if n < 1<<12 {
		n = 1 << 12
	}
	if n > 1<<20 {
		n = 1 << 20
	}
	return int(n)
}

func levelKey(k int) string { return fmt.Sprintf("srs/L%02d", k) }

// writeLevel spills one level's points.
func (b *backing) writeLevel(k int, pts []curve.G1Affine) error {
	w, err := b.store.Create(nil, levelKey(k))
	if err != nil {
		return err
	}
	const stagePts = 4096
	stage := make([]byte, 0, stagePts*pointBytes)
	for off := 0; off < len(pts); off += stagePts {
		end := off + stagePts
		if end > len(pts) {
			end = len(pts)
		}
		stage = stage[:0]
		for i := off; i < end; i++ {
			stage = appendPoint(stage, &pts[i])
		}
		if _, err := w.Write(stage); err != nil {
			w.Abort()
			return err
		}
	}
	return w.Close()
}

func appendPoint(dst []byte, p *curve.G1Affine) []byte {
	for l := 0; l < fp.Limbs; l++ {
		dst = binary.LittleEndian.AppendUint64(dst, p.X[l])
	}
	for l := 0; l < fp.Limbs; l++ {
		dst = binary.LittleEndian.AppendUint64(dst, p.Y[l])
	}
	if p.Infinity {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func decodePoint(src []byte, p *curve.G1Affine) {
	for l := 0; l < fp.Limbs; l++ {
		p.X[l] = binary.LittleEndian.Uint64(src[l*8:])
	}
	for l := 0; l < fp.Limbs; l++ {
		p.Y[l] = binary.LittleEndian.Uint64(src[(fp.Limbs+l)*8:])
	}
	p.Infinity = src[2*fp.Limbs*8] != 0
}

// readPointsRange decodes level k's points [off, off+len(dst)) from the
// store into dst.
func (b *backing) readPointsRange(ctx context.Context, k, off int, dst []curve.G1Affine) error {
	const stagePts = 4096
	stage := make([]byte, stagePts*pointBytes)
	for len(dst) > 0 {
		n := len(dst)
		if n > stagePts {
			n = stagePts
		}
		buf := stage[:n*pointBytes]
		if err := faultinject.Hit("pcs.offload.read"); err != nil {
			return fmt.Errorf("pcs: offload read level %d: %w", k, err)
		}
		if err := b.store.ReadAt(ctx, levelKey(k), int64(off)*pointBytes, buf); err != nil {
			return fmt.Errorf("pcs: offload read level %d: %w", k, err)
		}
		for i := 0; i < n; i++ {
			decodePoint(buf[i*pointBytes:], &dst[i])
		}
		dst = dst[n:]
		off += n
	}
	return nil
}

// acquireLevel returns level k's full basis and φ-table, loading it into the
// cache if needed (single-flight per level) and pinning it against eviction
// until release is called. Resident (never-offloaded) levels return the
// shared in-RAM slices with a no-op release.
//
// Failure semantics: a load error reaches the caller that ran the load and
// every caller that joined that flight, but it is never cached — the flight
// is cleared before the error is delivered, so the next acquire starts a
// fresh read from the store. A transient spill I/O error therefore costs
// one failed attempt, not the level.
func (s *SRS) acquireLevel(ctx context.Context, k, workers int) (pts []curve.G1Affine, endo []fp.Element, release func(), err error) {
	if s.Levels[k] != nil {
		return s.Levels[k], s.EndoPoints(k, workers), func() {}, nil
	}
	b := s.back
	if b == nil {
		return nil, nil, nil, fmt.Errorf("pcs: level %d is neither resident nor backed", k)
	}
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	var f *levelFlight
	b.mu.Lock()
	for {
		e := &b.lev[k]
		if e.pts != nil {
			e.pins++
			b.tick++
			e.use = b.tick
			pts, endo = e.pts, e.endo
			b.mu.Unlock()
			return pts, endo, func() { b.unpin(k) }, nil
		}
		if e.flight == nil {
			f = &levelFlight{done: make(chan struct{})}
			e.flight = f
			break // this caller runs the load
		}
		joined := e.flight
		b.mu.Unlock()
		//zkvet:ignore determinism flight-join wait; the loaded basis is identical whichever case wins, and the ctx arm only aborts an already-cancelled proof
		select {
		case <-joined.done:
			if joined.err != nil {
				return nil, nil, nil, joined.err
			}
		case <-ctxDone:
			return nil, nil, nil, ctx.Err()
		}
		b.mu.Lock() // loaded: loop back around and pin it
	}
	b.mu.Unlock()

	n := 1 << uint(k)
	loaded := make([]curve.G1Affine, n)
	err = b.readPointsRange(ctx, k, 0, loaded)
	var endoT []fp.Element
	if err == nil {
		endoT = curve.EndoPointsWorkers(loaded, workers)
	}

	b.mu.Lock()
	e := &b.lev[k]
	e.flight = nil // success or failure, the flight is over — never cached
	if err != nil {
		f.err = err
		close(f.done)
		b.mu.Unlock()
		return nil, nil, nil, err
	}
	e.pts, e.endo = loaded, endoT
	e.pins = 1
	b.tick++
	e.use = b.tick
	b.resident += levelMemBytes(k)
	b.evictLocked()
	close(f.done)
	b.mu.Unlock()
	return loaded, endoT, func() { b.unpin(k) }, nil
}

func (b *backing) unpin(k int) {
	b.mu.Lock()
	b.lev[k].pins--
	b.evictLocked()
	b.mu.Unlock()
}

// evictLocked drops least-recently-used unpinned levels until the resident
// bytes fit the budget. Caller holds b.mu.
func (b *backing) evictLocked() {
	for b.resident > b.cacheBudget {
		victim := -1
		var oldest int64
		for k := range b.lev {
			e := &b.lev[k]
			if e.pts == nil || e.pins > 0 {
				continue
			}
			if victim < 0 || e.use < oldest {
				victim, oldest = k, e.use
			}
		}
		if victim < 0 {
			return
		}
		b.lev[victim].pts = nil
		b.lev[victim].endo = nil
		b.resident -= levelMemBytes(victim)
	}
}

// readBasisEndoRange fills pts (and, when endoOut is non-nil, endoOut) with
// level k's basis points [off, off+len(pts)) and their φ-table, serving from
// the cache when the level happens to be loaded and streaming from the store
// otherwise.
func (s *SRS) readBasisEndoRange(ctx context.Context, k, off int, pts []curve.G1Affine, endoOut []fp.Element, workers int) error {
	if s.Levels[k] != nil {
		copy(pts, s.Levels[k][off:])
		if endoOut != nil {
			copy(endoOut, s.EndoPoints(k, workers)[off:])
		}
		return nil
	}
	b := s.back
	if b == nil {
		return fmt.Errorf("pcs: level %d is neither resident nor backed", k)
	}
	b.mu.Lock()
	e := &b.lev[k]
	if e.pts != nil {
		e.pins++
		b.tick++
		e.use = b.tick
		src, srcEndo := e.pts, e.endo
		b.mu.Unlock()
		copy(pts, src[off:])
		if endoOut != nil {
			copy(endoOut, srcEndo[off:])
		}
		b.unpin(k)
		return nil
	}
	b.mu.Unlock()
	if err := b.readPointsRange(ctx, k, off, pts); err != nil {
		return err
	}
	if endoOut != nil {
		curve.EndoPointsInto(endoOut, pts, workers)
	}
	return nil
}

// Arena pools for chunk-streamed basis points and φ-tables: one chunk of
// scratch per in-flight streamed MSM, reused across chunks and calls.
var (
	basisArena parallel.Arena[curve.G1Affine]
	endoArena  parallel.Arena[fp.Element]
)

// msmRangeCtx computes Σ_i scalars[i] · Levels[k][off+i] without ever
// materializing more of an offloaded level than the cache policy allows:
// levels that fit half the cache budget are acquired whole (and stay for
// the next call); larger levels stream chunk by chunk through arena
// scratch. sparse routes each MSM through the sparse path when its scalar
// segment is mostly 0/1 (the routing never changes the group result).
func (s *SRS) msmRangeCtx(ctx context.Context, k, off int, scalars []ff.Element, workers int, sparse bool) (curve.G1Jac, error) {
	b := s.back
	if s.Levels[k] != nil || b == nil || levelMemBytes(k) <= b.cacheBudget/2 {
		pts, endo, release, err := s.acquireLevel(ctx, k, workers)
		if err != nil {
			var zero curve.G1Jac
			return zero, err
		}
		defer release()
		return msmSegmentCtx(ctx, pts[off:off+len(scalars)], endo[off:off+len(scalars)], scalars, workers, sparse)
	}

	var acc curve.G1Jac
	acc.SetInfinity()
	chunk := b.chunkElems
	pts := basisArena.Get(chunk)
	endo := endoArena.Get(chunk)
	defer basisArena.Put(pts)
	defer endoArena.Put(endo)
	for lo := 0; lo < len(scalars); lo += chunk {
		hi := lo + chunk
		if hi > len(scalars) {
			hi = len(scalars)
		}
		n := hi - lo
		if err := s.readBasisEndoRange(ctx, k, off+lo, pts[:n], endo[:n], workers); err != nil {
			var zero curve.G1Jac
			return zero, err
		}
		part, err := msmSegmentCtx(ctx, pts[:n], endo[:n], scalars[lo:hi], workers, sparse)
		if err != nil {
			var zero curve.G1Jac
			return zero, err
		}
		acc.AddAssign(&part)
	}
	return acc, nil
}

// msmSegmentCtx is one MSM over an explicit basis segment, optionally
// routed by the segment's own sparsity.
func msmSegmentCtx(ctx context.Context, pts []curve.G1Affine, endo []fp.Element, scalars []ff.Element, workers int, sparse bool) (curve.G1Jac, error) {
	if sparse && mle.AnalyzeSparsitySlice(scalars, workers).DenseFraction() < 0.5 {
		return curve.SparseMSMEndoWorkersCtx(ctx, pts, endo, scalars, workers)
	}
	return curve.MSMEndoWorkersCtx(ctx, pts, endo, scalars, workers)
}

// commitBacked is the commit path for offloaded levels: the table streams
// through msmRangeCtx in bounded chunks, each chunk routed by its own
// sparsity (preprocessing's 0/1 selector tables stay on the sparse path).
func (s *SRS) commitBacked(ctx context.Context, t *mle.Table, workers int) (Commitment, error) {
	acc, err := s.msmRangeCtx(ctx, t.NumVars, 0, t.Evals, workers, true)
	if err != nil {
		return Commitment{}, err
	}
	var aff curve.G1Affine
	aff.FromJacobian(&acc)
	return Commitment{Point: aff, NumVars: t.NumVars}, nil
}
