package pcs

import (
	"context"
	"fmt"
	"sync"

	"zkphire/internal/curve"
	"zkphire/internal/ff"
	"zkphire/internal/fp"
	"zkphire/internal/mle"
)

// CommitCtx is CommitWorkers with mid-MSM cancellation: a cancel lands
// inside the Pippenger accumulation (curve.MSMEndoWorkersCtx) instead of
// waiting out the whole commitment. The successful result is identical to
// CommitWorkers for every budget.
func (s *SRS) CommitCtx(ctx context.Context, t *mle.Table, workers int) (Commitment, error) {
	k := t.NumVars
	if k > s.MaxVars {
		return Commitment{}, fmt.Errorf("pcs: table has %d vars, SRS supports %d", k, s.MaxVars)
	}
	basis := s.Levels[k]
	endoX := s.EndoPoints(k, workers)
	sp := t.AnalyzeSparsityWorkers(workers)
	var acc curve.G1Jac
	var err error
	if sp.DenseFraction() < 0.5 {
		acc, err = curve.SparseMSMEndoWorkersCtx(ctx, basis, endoX, t.Evals, workers)
	} else {
		acc, err = curve.MSMEndoWorkersCtx(ctx, basis, endoX, t.Evals, workers)
	}
	if err != nil {
		return Commitment{}, err
	}
	var aff curve.G1Affine
	aff.FromJacobian(&acc)
	return Commitment{Point: aff, NumVars: k}, nil
}

// OpenWorkersCtx is OpenWorkers with per-level and mid-MSM cancellation:
// every witness MSM polls ctx, and the fold loop checks it between levels.
func (s *SRS) OpenWorkersCtx(ctx context.Context, t *mle.Table, z []ff.Element, workers int) (ff.Element, *OpeningProof, error) {
	if ctx == nil {
		return s.OpenWorkers(t, z, workers)
	}
	return s.openWorkers(ctx, t, z, workers)
}

// streamGatherThreshold is the minimum segment size the stream committer
// sends to the MSM directly. The Pippenger amortization (one bucket-table
// reduction per (window, chunk) task) collapses on tiny inputs, and the
// product tree's upper levels halve forever — so segments below the
// threshold gather into a pending batch that flushes as one MSM. 2^15 keeps
// the streamed total within ~1% of the monolithic commit while still
// overlapping the bulk of the work (the leaves plus the first level are
// 3/4 of all scalars).
const streamGatherThreshold = 1 << 15

// StreamCommitter accumulates a commitment to a table that is produced in
// segments — the permutation product tree, whose leaves are final long
// before the upper levels exist. Feed adds a finished segment's partial MSM
// into a running group sum; Finish normalizes. Because group addition is
// exact and associative and FromJacobian is canonical, the final commitment
// is byte-identical to CommitWorkers over the assembled table, regardless
// of segmentation or budget.
//
// Feed may be called from one goroutine at a time (the prover's build
// stage); the committer is not otherwise concurrency-safe.
type StreamCommitter struct {
	srs     *SRS
	numVars int
	basis   []curve.G1Affine
	endoX   []fp.Element

	mu  sync.Mutex
	acc curve.G1Jac
	fed int

	// pending gather for sub-threshold segments: parallel slices of basis
	// points, φ x-coordinates, and scalars.
	pendPts     []curve.G1Affine
	pendEndo    []fp.Element
	pendScalars []ff.Element
}

// CommitStream starts a streamed commitment to a numVars-variable table.
func (s *SRS) CommitStream(numVars int) (*StreamCommitter, error) {
	if numVars > s.MaxVars {
		return nil, fmt.Errorf("pcs: table has %d vars, SRS supports %d", numVars, s.MaxVars)
	}
	sc := &StreamCommitter{
		srs:     s,
		numVars: numVars,
		basis:   s.Levels[numVars],
		endoX:   s.EndoPoints(numVars, 0),
	}
	sc.acc.SetInfinity()
	return sc, nil
}

// Feed absorbs vals as the table segment [offset, offset+len(vals)). Every
// index must be fed exactly once before Finish; segments may arrive in any
// order. Large segments run one partial MSM on the given worker budget
// (polling ctx, see MSMEndoWorkersCtx); small ones gather until a batch is
// worth a Pippenger pass. vals is read during the call only.
func (c *StreamCommitter) Feed(ctx context.Context, offset int, vals []ff.Element, workers int) error {
	if offset < 0 || offset+len(vals) > len(c.basis) {
		return fmt.Errorf("pcs: stream segment [%d,%d) outside table of size %d", offset, offset+len(vals), len(c.basis))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fed += len(vals)
	if len(vals) < streamGatherThreshold {
		c.pendPts = append(c.pendPts, c.basis[offset:offset+len(vals)]...)
		c.pendEndo = append(c.pendEndo, c.endoX[offset:offset+len(vals)]...)
		c.pendScalars = append(c.pendScalars, vals...)
		if len(c.pendScalars) >= streamGatherThreshold {
			return c.flushLocked(ctx, workers)
		}
		return nil
	}
	part, err := curve.MSMEndoWorkersCtx(ctx, c.basis[offset:offset+len(vals)], c.endoX[offset:offset+len(vals)], vals, workers)
	if err != nil {
		return err
	}
	c.acc.AddAssign(&part)
	return nil
}

// flushLocked runs the pending gather as one MSM. Caller holds mu.
func (c *StreamCommitter) flushLocked(ctx context.Context, workers int) error {
	if len(c.pendScalars) == 0 {
		return nil
	}
	part, err := curve.MSMEndoWorkersCtx(ctx, c.pendPts, c.pendEndo, c.pendScalars, workers)
	if err != nil {
		return err
	}
	c.acc.AddAssign(&part)
	c.pendPts = c.pendPts[:0]
	c.pendEndo = c.pendEndo[:0]
	c.pendScalars = c.pendScalars[:0]
	return nil
}

// Finish flushes the pending gather and returns the commitment. It errors
// if the fed segments do not cover the table exactly.
func (c *StreamCommitter) Finish(ctx context.Context, workers int) (Commitment, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fed != len(c.basis) {
		return Commitment{}, fmt.Errorf("pcs: stream fed %d of %d entries", c.fed, len(c.basis))
	}
	if err := c.flushLocked(ctx, workers); err != nil {
		return Commitment{}, err
	}
	var aff curve.G1Affine
	aff.FromJacobian(&c.acc)
	return Commitment{Point: aff, NumVars: c.numVars}, nil
}
