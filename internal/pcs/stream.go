package pcs

import (
	"context"
	"fmt"
	"sync"

	"zkphire/internal/curve"
	"zkphire/internal/ff"
	"zkphire/internal/mle"
)

// CommitCtx is CommitWorkers with mid-MSM cancellation: a cancel lands
// inside the Pippenger accumulation (curve.MSMEndoWorkersCtx) instead of
// waiting out the whole commitment. The successful result is identical to
// CommitWorkers for every budget.
func (s *SRS) CommitCtx(ctx context.Context, t *mle.Table, workers int) (Commitment, error) {
	k := t.NumVars
	if k > s.MaxVars {
		return Commitment{}, fmt.Errorf("pcs: table has %d vars, SRS supports %d", k, s.MaxVars)
	}
	if s.Levels[k] == nil {
		return s.commitBacked(ctx, t, workers)
	}
	basis := s.Levels[k]
	endoX := s.EndoPoints(k, workers)
	sp := t.AnalyzeSparsityWorkers(workers)
	var acc curve.G1Jac
	var err error
	if sp.DenseFraction() < 0.5 {
		acc, err = curve.SparseMSMEndoWorkersCtx(ctx, basis, endoX, t.Evals, workers)
	} else {
		acc, err = curve.MSMEndoWorkersCtx(ctx, basis, endoX, t.Evals, workers)
	}
	if err != nil {
		return Commitment{}, err
	}
	var aff curve.G1Affine
	aff.FromJacobian(&acc)
	return Commitment{Point: aff, NumVars: k}, nil
}

// OpenWorkersCtx is OpenWorkers with per-level and mid-MSM cancellation:
// every witness MSM polls ctx, and the fold loop checks it between levels.
func (s *SRS) OpenWorkersCtx(ctx context.Context, t *mle.Table, z []ff.Element, workers int) (ff.Element, *OpeningProof, error) {
	if ctx == nil {
		return s.OpenWorkers(t, z, workers)
	}
	return s.openWorkers(ctx, t, z, workers)
}

// streamGatherThreshold is the minimum segment size the stream committer
// sends to the MSM directly. The Pippenger amortization (one bucket-table
// reduction per (window, chunk) task) collapses on tiny inputs, and the
// product tree's upper levels halve forever — so segments below the
// threshold gather into a pending batch that flushes as one MSM. 2^15 keeps
// the streamed total within ~1% of the monolithic commit while still
// overlapping the bulk of the work (the leaves plus the first level are
// 3/4 of all scalars).
const streamGatherThreshold = 1 << 15

// StreamCommitter accumulates a commitment to a table that is produced in
// segments — the permutation product tree, whose leaves are final long
// before the upper levels exist. Feed adds a finished segment's partial MSM
// into a running group sum; Finish normalizes. Because group addition is
// exact and associative and FromJacobian is canonical, the final commitment
// is byte-identical to CommitWorkers over the assembled table, regardless
// of segmentation or budget.
//
// Basis access routes through the SRS: on an offloaded SRS, large segments
// stream through the chunked MSM (msmRangeCtx) and the sub-threshold gather
// materializes its basis ranges only at flush time, into arena scratch —
// the committer never holds more than one chunk of basis points.
//
// Feed may be called from one goroutine at a time (the prover's build
// stage); the committer is not otherwise concurrency-safe.
type StreamCommitter struct {
	srs     *SRS
	numVars int
	size    int

	mu  sync.Mutex
	acc curve.G1Jac
	fed int

	// pending gather for sub-threshold segments: the copied scalars, flat,
	// plus each segment's table offset and length (basis ranges are
	// materialized at flush).
	pendScalars []ff.Element
	pendOffs    []int
	pendLens    []int
}

// CommitStream starts a streamed commitment to a numVars-variable table.
func (s *SRS) CommitStream(numVars int) (*StreamCommitter, error) {
	if numVars > s.MaxVars {
		return nil, fmt.Errorf("pcs: table has %d vars, SRS supports %d", numVars, s.MaxVars)
	}
	sc := &StreamCommitter{
		srs:     s,
		numVars: numVars,
		size:    1 << uint(numVars),
	}
	sc.acc.SetInfinity()
	return sc, nil
}

// Feed absorbs vals as the table segment [offset, offset+len(vals)). Every
// index must be fed exactly once before Finish; segments may arrive in any
// order. Large segments run one partial MSM on the given worker budget
// (polling ctx, see MSMEndoWorkersCtx); small ones gather until a batch is
// worth a Pippenger pass. vals is read during the call only.
func (c *StreamCommitter) Feed(ctx context.Context, offset int, vals []ff.Element, workers int) error {
	if offset < 0 || offset+len(vals) > c.size {
		return fmt.Errorf("pcs: stream segment [%d,%d) outside table of size %d", offset, offset+len(vals), c.size)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fed += len(vals)
	if len(vals) < streamGatherThreshold {
		c.pendScalars = append(c.pendScalars, vals...)
		c.pendOffs = append(c.pendOffs, offset)
		c.pendLens = append(c.pendLens, len(vals))
		if len(c.pendScalars) >= streamGatherThreshold {
			return c.flushLocked(ctx, workers)
		}
		return nil
	}
	part, err := c.srs.msmRangeCtx(ctx, c.numVars, offset, vals, workers, false)
	if err != nil {
		return err
	}
	c.acc.AddAssign(&part)
	return nil
}

// flushLocked materializes the pending segments' basis ranges into arena
// scratch and runs the gather as one MSM. Caller holds mu.
func (c *StreamCommitter) flushLocked(ctx context.Context, workers int) error {
	total := len(c.pendScalars)
	if total == 0 {
		return nil
	}
	pts := basisArena.Get(total)
	endo := endoArena.Get(total)
	defer basisArena.Put(pts)
	defer endoArena.Put(endo)
	pos := 0
	for i, off := range c.pendOffs {
		n := c.pendLens[i]
		if err := c.srs.readBasisEndoRange(ctx, c.numVars, off, pts[pos:pos+n], endo[pos:pos+n], workers); err != nil {
			return err
		}
		pos += n
	}
	part, err := curve.MSMEndoWorkersCtx(ctx, pts[:total], endo[:total], c.pendScalars, workers)
	if err != nil {
		return err
	}
	c.acc.AddAssign(&part)
	c.pendScalars = c.pendScalars[:0]
	c.pendOffs = c.pendOffs[:0]
	c.pendLens = c.pendLens[:0]
	return nil
}

// Finish flushes the pending gather and returns the commitment. It errors
// if the fed segments do not cover the table exactly.
func (c *StreamCommitter) Finish(ctx context.Context, workers int) (Commitment, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fed != c.size {
		return Commitment{}, fmt.Errorf("pcs: stream fed %d of %d entries", c.fed, c.size)
	}
	if err := c.flushLocked(ctx, workers); err != nil {
		return Commitment{}, err
	}
	var aff curve.G1Affine
	aff.FromJacobian(&c.acc)
	return Commitment{Point: aff, NumVars: c.numVars}, nil
}
