package pcs

import (
	"testing"

	"zkphire/internal/ff"
	"zkphire/internal/mle"
)

var testSRS = SetupDeterministic(8, 12345)

func TestCommitOpenVerify(t *testing.T) {
	rng := ff.NewRand(1)
	for _, nv := range []int{1, 3, 6, 8} {
		tab := mle.FromEvals(rng.Elements(1 << uint(nv)))
		c, err := testSRS.Commit(tab)
		if err != nil {
			t.Fatal(err)
		}
		z := rng.Elements(nv)
		y, proof, err := testSRS.Open(tab, z)
		if err != nil {
			t.Fatal(err)
		}
		// The opened value must equal the true MLE evaluation.
		want := tab.Evaluate(z)
		if !y.Equal(&want) {
			t.Fatalf("nv=%d: opened value wrong", nv)
		}
		if err := testSRS.Verify(c, z, y, proof); err != nil {
			t.Fatalf("nv=%d: %v", nv, err)
		}
	}
}

func TestVerifyRejectsWrongValue(t *testing.T) {
	rng := ff.NewRand(2)
	tab := mle.FromEvals(rng.Elements(64))
	c, _ := testSRS.Commit(tab)
	z := rng.Elements(6)
	y, proof, _ := testSRS.Open(tab, z)

	var bad ff.Element
	bad.Add(&y, &y)
	var oneE ff.Element
	oneE.SetOne()
	bad.Add(&bad, &oneE)
	if err := testSRS.Verify(c, z, bad, proof); err == nil {
		t.Fatal("verified a wrong evaluation value")
	}
}

func TestVerifyRejectsWrongCommitment(t *testing.T) {
	rng := ff.NewRand(3)
	tab1 := mle.FromEvals(rng.Elements(64))
	tab2 := mle.FromEvals(rng.Elements(64))
	c2, _ := testSRS.Commit(tab2)
	z := rng.Elements(6)
	y, proof, _ := testSRS.Open(tab1, z)
	if err := testSRS.Verify(c2, z, y, proof); err == nil {
		t.Fatal("opening for tab1 verified against commitment to tab2")
	}
}

func TestVerifyRejectsWrongPoint(t *testing.T) {
	rng := ff.NewRand(4)
	tab := mle.FromEvals(rng.Elements(64))
	c, _ := testSRS.Commit(tab)
	z := rng.Elements(6)
	y, proof, _ := testSRS.Open(tab, z)
	z2 := rng.Elements(6)
	if err := testSRS.Verify(c, z2, y, proof); err == nil {
		t.Fatal("opening verified at a different point")
	}
}

func TestCommitmentBindingLinear(t *testing.T) {
	// Commit(a) + Commit(b) must equal Commit(a+b) — homomorphism the batch
	// opening protocol relies on.
	rng := ff.NewRand(5)
	a := mle.FromEvals(rng.Elements(32))
	b := mle.FromEvals(rng.Elements(32))
	ca, _ := testSRS.Commit(a)
	cb, _ := testSRS.Commit(b)
	sum := a.Clone()
	sum.AddInPlace(b)
	cSum, _ := testSRS.Commit(sum)

	oneE := ff.One()
	combined, err := CombineCommitments([]Commitment{ca, cb}, []ff.Element{oneE, oneE})
	if err != nil {
		t.Fatal(err)
	}
	if !combined.Point.Equal(&cSum.Point) {
		t.Fatal("commitment is not additively homomorphic")
	}
}

func TestBatchedSinglePointOpening(t *testing.T) {
	// Open Σ β^k f_k at one point via the combined table; verify against the
	// combined commitment.
	rng := ff.NewRand(6)
	k := 4
	nv := 6
	tables := make([]*mle.Table, k)
	comms := make([]Commitment, k)
	for i := range tables {
		tables[i] = mle.FromEvals(rng.Elements(1 << uint(nv)))
		c, err := testSRS.Commit(tables[i])
		if err != nil {
			t.Fatal(err)
		}
		comms[i] = c
	}
	beta := rng.Element()
	coeffs := make([]ff.Element, k)
	coeffs[0] = ff.One()
	for i := 1; i < k; i++ {
		coeffs[i].Mul(&coeffs[i-1], &beta)
	}
	combTab, err := CombineTables(tables, coeffs)
	if err != nil {
		t.Fatal(err)
	}
	combComm, err := CombineCommitments(comms, coeffs)
	if err != nil {
		t.Fatal(err)
	}
	z := rng.Elements(nv)
	y, proof, err := testSRS.Open(combTab, z)
	if err != nil {
		t.Fatal(err)
	}
	if err := testSRS.Verify(combComm, z, y, proof); err != nil {
		t.Fatal(err)
	}
	// And y must equal Σ β^k f_k(z).
	var want ff.Element
	for i := range tables {
		v := tables[i].Evaluate(z)
		v.Mul(&v, &coeffs[i])
		want.Add(&want, &v)
	}
	if !y.Equal(&want) {
		t.Fatal("combined opening value mismatch")
	}
}

func TestSparseCommitMatchesDense(t *testing.T) {
	rng := ff.NewRand(7)
	sparse := mle.FromEvals(rng.SparseElements(256, 0.1))
	c1, err := testSRS.Commit(sparse)
	if err != nil {
		t.Fatal(err)
	}
	// Force the dense path by committing a clone through MSM directly: the
	// sparse fast path must be value-identical. Re-commit after adding 0.
	dense := sparse.Clone()
	z := mle.New(8)
	dense.AddInPlace(z)
	c2, err := testSRS.Commit(dense)
	if err != nil {
		t.Fatal(err)
	}
	if !c1.Point.Equal(&c2.Point) {
		t.Fatal("sparse/dense commit mismatch")
	}
}

func TestArityErrors(t *testing.T) {
	rng := ff.NewRand(8)
	tab := mle.FromEvals(rng.Elements(16))
	if _, _, err := testSRS.Open(tab, rng.Elements(3)); err == nil {
		t.Fatal("accepted wrong point arity")
	}
	big := mle.FromEvals(rng.Elements(1 << 9))
	if _, err := testSRS.Commit(big); err == nil {
		t.Fatal("accepted table larger than SRS")
	}
	if _, err := CombineCommitments(nil, nil); err == nil {
		t.Fatal("accepted empty combination")
	}
}

func TestSetupValidatesRange(t *testing.T) {
	if _, err := Setup(0, ff.NewRandReader(1)); err == nil {
		t.Fatal("accepted maxVars=0")
	}
	if _, err := Setup(99, ff.NewRandReader(1)); err == nil {
		t.Fatal("accepted absurd maxVars")
	}
}

func BenchmarkCommit2_8(b *testing.B) {
	rng := ff.NewRand(9)
	tab := mle.FromEvals(rng.Elements(256))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := testSRS.Commit(tab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpen2_8(b *testing.B) {
	rng := ff.NewRand(10)
	tab := mle.FromEvals(rng.Elements(256))
	z := rng.Elements(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := testSRS.Open(tab, z); err != nil {
			b.Fatal(err)
		}
	}
}
