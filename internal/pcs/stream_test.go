package pcs

import (
	"context"
	"math/rand"
	"testing"

	"zkphire/internal/ff"
	"zkphire/internal/mle"
)

// TestCommitStreamMatchesMonolithic feeds a table in the product-tree
// emission pattern (N leaves, then halving levels, then the root/pad pair)
// and in randomized segmentations, checking the streamed commitment equals
// CommitWorkers bit-for-bit.
func TestCommitStreamMatchesMonolithic(t *testing.T) {
	srs := SetupDeterministic(8, 1234)
	rng := ff.NewRand(99)
	const nv = 7
	tab := mle.FromEvals(rng.Elements(1 << nv))
	want, err := srs.CommitWorkers(tab, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Product-tree pattern: leaves [0, n), levels, root/pad.
	n := (1 << nv) / 2
	sc, err := srs.CommitStream(nv)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(off, ln int) {
		if err := sc.Feed(context.Background(), off, tab.Evals[off:off+ln], 2); err != nil {
			t.Fatal(err)
		}
	}
	feed(0, n)
	for width := n / 2; width > 1; width /= 2 {
		off := n - 2*width
		feed(n+off, width)
	}
	feed(2*n-2, 2)
	got, err := sc.Finish(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Point.Equal(&want.Point) || got.NumVars != want.NumVars {
		t.Fatal("tree-pattern streamed commitment diverged from monolithic commit")
	}

	// Randomized segmentations in shuffled arrival order.
	for trial := 0; trial < 5; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		var segs [][2]int
		for off := 0; off < tab.Size(); {
			ln := 1 + r.Intn(tab.Size()-off)
			segs = append(segs, [2]int{off, ln})
			off += ln
		}
		r.Shuffle(len(segs), func(i, j int) { segs[i], segs[j] = segs[j], segs[i] })
		sc, err := srs.CommitStream(nv)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range segs {
			feedErr := sc.Feed(context.Background(), s[0], tab.Evals[s[0]:s[0]+s[1]], 1)
			if feedErr != nil {
				t.Fatal(feedErr)
			}
		}
		got, err := sc.Finish(context.Background(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Point.Equal(&want.Point) {
			t.Fatalf("trial %d: randomized streamed commitment diverged", trial)
		}
	}
}

// TestCommitStreamCoverage pins the Finish error when segments do not cover
// the table.
func TestCommitStreamCoverage(t *testing.T) {
	srs := SetupDeterministic(4, 5)
	sc, err := srs.CommitStream(3)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]ff.Element, 4)
	if err := sc.Feed(context.Background(), 0, vals, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Finish(context.Background(), 1); err == nil {
		t.Fatal("Finish accepted partial coverage")
	}
	if err := sc.Feed(context.Background(), 0, make([]ff.Element, 16), 1); err == nil {
		t.Fatal("Feed accepted out-of-range segment")
	}
}

// TestCommitCtxCancelled checks CommitCtx returns promptly with ctx.Err()
// on a pre-cancelled context and that the error propagates from the MSM.
func TestCommitCtxCancelled(t *testing.T) {
	srs := SetupDeterministic(8, 7)
	rng := ff.NewRand(3)
	tab := mle.FromEvals(rng.Elements(1 << 8))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srs.CommitCtx(ctx, tab, 2); err != context.Canceled {
		t.Fatalf("CommitCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, _, err := srs.OpenWorkersCtx(ctx, tab, rng.Elements(8), 2); err != context.Canceled {
		t.Fatalf("OpenWorkersCtx on cancelled ctx = %v, want context.Canceled", err)
	}
}
