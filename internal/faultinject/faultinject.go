// Package faultinject is the repository's controlled-failure switchboard:
// named failure points threaded through the I/O and job-dispatch layers
// (spill page writes/reads, offloaded SRS level loads, journal appends,
// the service queue) that tests and the chaos harness arm to make a
// specific site fail in a specific way — return a transient error, panic,
// or crash the whole process — with a per-point probability and budget.
//
// Production cost is one atomic load per site: until something arms a
// fault the package is a no-op, and nothing in the repository arms faults
// outside tests. Points are plain dotted names ("spill.write",
// "journal.append"); the full set in use is listed in DESIGN.md §9.
// The cluster layer adds network-shaped points — "cluster.heartbeat",
// "cluster.dispatch", "cluster.fetch" — so the chaos harness can
// partition a worker (its RPCs fail, the process lives) instead of
// killing it; the name constants live in internal/cluster.
//
// Faults arm programmatically (Arm/Disarm/Reset) or from the environment
// (ArmFromEnv reads ZKPHIRE_FAULTS), which is how the crash/replay
// harness reaches into a child daemon process:
//
//	ZKPHIRE_FAULTS="journal.append:crash:0.5:1,spill.read:error:1:2"
//
// arms a 50%-probability one-shot crash at journal.append and an
// always-firing two-shot transient error at spill.read. The draw sequence
// is seeded (ZKPHIRE_FAULT_SEED) so a chaos round can be replayed.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Mode is what an armed fault does when it fires.
type Mode int

const (
	// ModeError makes Hit return a transient injected error.
	ModeError Mode = iota
	// ModePanic makes Hit panic — the job-boundary containment test.
	ModePanic
	// ModeCrash exits the process immediately (exit code 137, the same a
	// SIGKILL produces) — no deferred cleanup runs, which is the point:
	// the journal must survive an un-unwound death.
	ModeCrash
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeCrash:
		return "crash"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// CrashExitCode is the exit status of a ModeCrash firing.
const CrashExitCode = 137

// Fault describes one armed failure.
type Fault struct {
	// Mode selects error / panic / crash.
	Mode Mode
	// Prob is the per-hit firing probability; 0 means 1 (always).
	Prob float64
	// Count caps how many times the fault fires; 0 means unlimited. A
	// fired crash obviously needs no bookkeeping, but a Count lets the
	// harness arm "crash once, then run clean" in a single child run.
	Count int
	// Err overrides the error returned in ModeError (default ErrInjected).
	Err error
}

// injectedError is the ModeError payload. It implements Transient() so
// the retry layer classifies it without this package importing retry.
type injectedError struct{ point string }

func (e *injectedError) Error() string   { return "faultinject: injected fault at " + e.point }
func (e *injectedError) Transient() bool { return true }
func (e *injectedError) Is(err error) bool {
	return err == ErrInjected
}

// ErrInjected is the sentinel all injected errors match with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

type armedFault struct {
	Fault
	fired int
}

var (
	armed atomic.Bool // fast path: no faults armed anywhere

	mu     sync.Mutex
	points map[string]*armedFault
	rng    *rand.Rand
	// exit is swapped out by tests of ModeCrash itself; everything else
	// genuinely dies.
	exit func(int) = os.Exit
)

// Enabled reports whether any fault is armed. It is the one check hot
// paths pay.
func Enabled() bool { return armed.Load() }

// Arm installs (or replaces) the fault at point.
func Arm(point string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*armedFault)
	}
	if f.Prob <= 0 {
		f.Prob = 1
	}
	points[point] = &armedFault{Fault: f}
	armed.Store(true)
}

// Disarm removes the fault at point, if any.
func Disarm(point string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, point)
	if len(points) == 0 {
		armed.Store(false)
	}
}

// Reset disarms everything and reseeds the draw sequence.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = nil
	rng = nil
	armed.Store(false)
}

// Seed fixes the firing-draw sequence so a chaos round replays.
func Seed(seed int64) {
	mu.Lock()
	defer mu.Unlock()
	rng = rand.New(rand.NewSource(seed))
}

// Hit is the instrumentation call sites place at a failure point. With no
// fault armed at name it costs one atomic load and returns nil. An armed
// fault fires with its probability until its count is spent: ModeError
// returns the injected (transient) error, ModePanic panics, ModeCrash
// exits the process without unwinding.
func Hit(name string) error {
	if !armed.Load() {
		return nil
	}
	mu.Lock()
	f, ok := points[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	if f.Count > 0 && f.fired >= f.Count {
		mu.Unlock()
		return nil
	}
	if f.Prob < 1 {
		if rng == nil {
			rng = rand.New(rand.NewSource(1))
		}
		if rng.Float64() >= f.Prob {
			mu.Unlock()
			return nil
		}
	}
	f.fired++
	mode, errOverride := f.Mode, f.Err
	mu.Unlock()

	switch mode {
	case ModePanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s", name))
	case ModeCrash:
		fmt.Fprintf(os.Stderr, "faultinject: injected crash at %s\n", name)
		exit(CrashExitCode)
		return nil // only reached when tests stub exit
	default:
		if errOverride != nil {
			return errOverride
		}
		return &injectedError{point: name}
	}
}

// EnvVar and EnvSeedVar are the environment knobs ArmFromEnv reads.
const (
	EnvVar     = "ZKPHIRE_FAULTS"
	EnvSeedVar = "ZKPHIRE_FAULT_SEED"
)

// ArmFromEnv arms faults from ZKPHIRE_FAULTS (comma-separated
// point:mode[:prob[:count]] clauses; mode is error|panic|crash) and seeds
// the draw sequence from ZKPHIRE_FAULT_SEED when set. An empty or unset
// variable is a no-op. cmd/zkphired calls it at startup so the chaos
// harness can reach a child daemon.
func ArmFromEnv() error {
	if s := os.Getenv(EnvSeedVar); s != "" {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("faultinject: %s=%q: %w", EnvSeedVar, s, err)
		}
		Seed(seed)
	}
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return nil
	}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		if len(parts) < 2 || len(parts) > 4 {
			return fmt.Errorf("faultinject: bad clause %q (want point:mode[:prob[:count]])", clause)
		}
		var f Fault
		switch parts[1] {
		case "error":
			f.Mode = ModeError
		case "panic":
			f.Mode = ModePanic
		case "crash":
			f.Mode = ModeCrash
		default:
			return fmt.Errorf("faultinject: bad mode %q in clause %q", parts[1], clause)
		}
		if len(parts) >= 3 {
			p, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || p < 0 || p > 1 {
				return fmt.Errorf("faultinject: bad probability %q in clause %q", parts[2], clause)
			}
			f.Prob = p
		}
		if len(parts) == 4 {
			c, err := strconv.Atoi(parts[3])
			if err != nil || c < 0 {
				return fmt.Errorf("faultinject: bad count %q in clause %q", parts[3], clause)
			}
			f.Count = c
		}
		Arm(parts[0], f)
	}
	return nil
}
