package faultinject

import (
	"errors"
	"os"
	"testing"
)

func TestDisarmedIsFree(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("enabled with nothing armed")
	}
	if err := Hit("anything"); err != nil {
		t.Fatalf("unarmed Hit returned %v", err)
	}
}

func TestErrorModeAndCount(t *testing.T) {
	Reset()
	defer Reset()
	Arm("p", Fault{Mode: ModeError, Count: 2})
	if !Enabled() {
		t.Fatal("not enabled after Arm")
	}
	for i := 0; i < 2; i++ {
		err := Hit("p")
		if err == nil {
			t.Fatalf("hit %d: no error", i)
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: error %v does not match ErrInjected", i, err)
		}
		var tr interface{ Transient() bool }
		if !errors.As(err, &tr) || !tr.Transient() {
			t.Fatalf("hit %d: injected error is not transient", i)
		}
	}
	if err := Hit("p"); err != nil {
		t.Fatalf("count-exhausted fault still fired: %v", err)
	}
	if err := Hit("other"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestPanicMode(t *testing.T) {
	Reset()
	defer Reset()
	Arm("boom", Fault{Mode: ModePanic})
	defer func() {
		if recover() == nil {
			t.Fatal("ModePanic did not panic")
		}
	}()
	Hit("boom")
}

func TestCrashModeCallsExit(t *testing.T) {
	Reset()
	defer Reset()
	code := 0
	exit = func(c int) { code = c }
	defer func() { exit = os.Exit }()
	Arm("die", Fault{Mode: ModeCrash})
	Hit("die")
	if code != CrashExitCode {
		t.Fatalf("crash exit code = %d, want %d", code, CrashExitCode)
	}
}

func TestProbabilityIsSeeded(t *testing.T) {
	draws := func() []bool {
		Reset()
		Seed(7)
		Arm("maybe", Fault{Mode: ModeError, Prob: 0.5})
		out := make([]bool, 32)
		for i := range out {
			out[i] = Hit("maybe") != nil
		}
		return out
	}
	a, b := draws(), draws()
	Reset()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded draw sequence diverged at %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p=0.5 fault fired %d/%d times", fired, len(a))
	}
}

func TestArmFromEnv(t *testing.T) {
	Reset()
	defer Reset()
	t.Setenv(EnvVar, "a.b:error:1:2, c.d:panic:0.25 ,e.f:crash")
	t.Setenv(EnvSeedVar, "42")
	if err := ArmFromEnv(); err != nil {
		t.Fatal(err)
	}
	if err := Hit("a.b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("a.b not armed as error: %v", err)
	}
	mu.Lock()
	cd, ok := points["c.d"]
	ef, ok2 := points["e.f"]
	mu.Unlock()
	if !ok || cd.Mode != ModePanic || cd.Prob != 0.25 {
		t.Fatalf("c.d armed wrong: %+v", cd)
	}
	if !ok2 || ef.Mode != ModeCrash || ef.Prob != 1 {
		t.Fatalf("e.f armed wrong: %+v", ef)
	}

	for _, bad := range []string{"x", "x:nope", "x:error:2", "x:error:1:-1", "x:error:1:2:3"} {
		t.Setenv(EnvVar, bad)
		if err := ArmFromEnv(); err == nil {
			t.Errorf("ArmFromEnv(%q) accepted a malformed clause", bad)
		}
	}
}
