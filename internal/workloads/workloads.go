// Package workloads registers the paper's evaluation workloads (Tables VI,
// VII, VIII and Fig. 13) with their published Vanilla and Jellyfish gate
// counts, plus the sparsity statistics shared with prior work. The circuits
// themselves are proprietary/production artifacts; the models only depend on
// gate counts, wire counts, and sparsity — all published — so the registry
// carries exactly those (see DESIGN.md substitutions).
package workloads

import (
	"fmt"

	"zkphire/internal/hw"
)

// GateKind selects the arithmetization.
type GateKind int

const (
	// Vanilla is the 3-wire Plonk gate.
	Vanilla GateKind = iota
	// Jellyfish is the 5-wire high-degree custom gate.
	Jellyfish
)

func (g GateKind) String() string {
	if g == Jellyfish {
		return "jellyfish"
	}
	return "vanilla"
}

// Wires returns the witness-column count for a gate kind.
func (g GateKind) Wires() int {
	if g == Jellyfish {
		return 5
	}
	return 3
}

// Workload is one evaluation circuit.
type Workload struct {
	Name string
	// LogVanilla is log2 of the Vanilla gate count ("nominal constraints").
	LogVanilla int
	// LogJellyfish is log2 of the Jellyfish gate count (0 if unavailable).
	LogJellyfish int
	// CPUVanillaMS / CPUJellyfishMS are the paper's measured 32-thread CPU
	// prover times (milliseconds); carried for paper-vs-model comparison.
	CPUVanillaMS   float64
	CPUJellyfishMS float64
	Sparsity       hw.SparsityProfile
}

// Gates returns the gate count for a kind.
func (w Workload) Gates(kind GateKind) int {
	lg := w.LogVanilla
	if kind == Jellyfish {
		lg = w.LogJellyfish
	}
	if lg <= 0 {
		return 0
	}
	return 1 << uint(lg)
}

// Reduction returns the Vanilla/Jellyfish gate-count ratio.
func (w Workload) Reduction() float64 {
	if w.LogJellyfish <= 0 {
		return 1
	}
	return float64(uint64(1) << uint(w.LogVanilla-w.LogJellyfish))
}

// Registry lists the paper's workloads (Tables VI and VII).
func Registry() []Workload {
	s := hw.DefaultSparsity
	return []Workload{
		{Name: "ZCash", LogVanilla: 17, LogJellyfish: 15, CPUVanillaMS: 1429, CPUJellyfishMS: 701, Sparsity: s},
		{Name: "Auction", LogVanilla: 20, LogJellyfish: 0, CPUVanillaMS: 8619, Sparsity: s},
		{Name: "Rescue-4096", LogVanilla: 21, LogJellyfish: 20, CPUVanillaMS: 18637, CPUJellyfishMS: 11532, Sparsity: s},
		{Name: "Zexe", LogVanilla: 22, LogJellyfish: 17, CPUVanillaMS: 37469, CPUJellyfishMS: 1951, Sparsity: s},
		{Name: "Rollup-10", LogVanilla: 23, LogJellyfish: 18, CPUVanillaMS: 74052, CPUJellyfishMS: 3339, Sparsity: s},
		{Name: "Rollup-25", LogVanilla: 24, LogJellyfish: 19, CPUVanillaMS: 145500, CPUJellyfishMS: 6161, Sparsity: s},
		{Name: "Rollup-50", LogVanilla: 25, LogJellyfish: 20, CPUVanillaMS: 325048, CPUJellyfishMS: 11533, Sparsity: s},
		{Name: "Rollup-100", LogVanilla: 26, LogJellyfish: 21, CPUVanillaMS: 640987, CPUJellyfishMS: 24071, Sparsity: s},
		{Name: "Rollup-1600", LogVanilla: 30, LogJellyfish: 25, CPUVanillaMS: 0, CPUJellyfishMS: 355406, Sparsity: s},
		{Name: "zkEVM", LogVanilla: 30, LogJellyfish: 27, CPUVanillaMS: 0, CPUJellyfishMS: 25 * 60 * 1000, Sparsity: s},
	}
}

// ByName returns a workload by name.
func ByName(name string) (Workload, error) {
	for _, w := range Registry() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// Fig13Set returns the Figure 13 workload order (including the scaled ZCash
// and Zexe variants from prior work).
func Fig13Set() []Workload {
	s := hw.DefaultSparsity
	base := Registry()
	byName := map[string]Workload{}
	for _, w := range base {
		byName[w.Name] = w
	}
	return []Workload{
		byName["ZCash"],
		byName["Rescue-4096"],
		byName["Zexe"],
		{Name: "ZCash-scaled", LogVanilla: 24, LogJellyfish: 22, Sparsity: s},
		{Name: "Zexe-scaled", LogVanilla: 25, LogJellyfish: 20, Sparsity: s},
		byName["Rollup-1600"],
		byName["zkEVM"],
	}
}
