package workloads

import "testing"

func TestRegistryConsistency(t *testing.T) {
	for _, w := range Registry() {
		if w.LogVanilla < 15 || w.LogVanilla > 30 {
			t.Errorf("%s: implausible Vanilla size 2^%d", w.Name, w.LogVanilla)
		}
		if w.LogJellyfish > 0 && w.LogJellyfish >= w.LogVanilla {
			t.Errorf("%s: Jellyfish should reduce gate count", w.Name)
		}
		if w.LogJellyfish > 0 {
			r := w.Reduction()
			if r < 2 || r > 64 {
				t.Errorf("%s: reduction %.0fx outside the paper's 2-32x band", w.Name, r)
			}
		}
	}
}

func TestTableVIIGateCounts(t *testing.T) {
	// Spot-check the published pairs.
	want := map[string][2]int{
		"ZCash":       {17, 15},
		"Zexe":        {22, 17},
		"Rollup-25":   {24, 19},
		"Rollup-1600": {30, 25},
	}
	for name, pair := range want {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if w.LogVanilla != pair[0] || w.LogJellyfish != pair[1] {
			t.Errorf("%s: (%d,%d), want (%d,%d)", name, w.LogVanilla, w.LogJellyfish, pair[0], pair[1])
		}
	}
}

func TestGateKind(t *testing.T) {
	if Vanilla.Wires() != 3 || Jellyfish.Wires() != 5 {
		t.Fatal("wire counts wrong")
	}
	w, _ := ByName("ZCash")
	if w.Gates(Vanilla) != 1<<17 || w.Gates(Jellyfish) != 1<<15 {
		t.Fatal("gate counts wrong")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestFig13Set(t *testing.T) {
	set := Fig13Set()
	if len(set) != 7 {
		t.Fatalf("Fig. 13 has 7 workloads, got %d", len(set))
	}
	for _, w := range set {
		if w.Name == "" || w.LogVanilla == 0 {
			t.Fatal("malformed Fig. 13 entry")
		}
	}
}
