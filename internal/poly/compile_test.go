package poly

import (
	"fmt"
	"testing"

	"zkphire/internal/expr"
	"zkphire/internal/ff"
)

// evalBoth runs the tree-walk interpreter and the compiled program on the
// same assignment and fails on any divergence. Both sides are exact field
// arithmetic, so equality is limb equality.
func evalBoth(t *testing.T, c *Composite, assign []ff.Element) {
	t.Helper()
	want := c.Evaluate(assign)
	prog := c.Compile()
	regs := make([]ff.Element, prog.NumRegs)
	copy(regs, assign)
	got := prog.Eval(regs)
	if !got.Equal(&want) {
		t.Fatalf("compiled evaluator diverges on %s:\n%s", c.Name, prog.String())
	}
	// Inputs must survive evaluation (the SumCheck scan steps them
	// incrementally between calls).
	for i := range assign {
		if !regs[i].Equal(&assign[i]) {
			t.Fatalf("program clobbered input register %d of %s", i, c.Name)
		}
	}
}

func TestCompiledMatchesEvaluateRegistry(t *testing.T) {
	rng := ff.NewRand(41)
	for id := 0; id < NumRegistered; id++ {
		c := Registered(id)
		for trial := 0; trial < 8; trial++ {
			evalBoth(t, c, rng.Elements(c.NumVars()))
		}
	}
	for _, d := range []int{2, 5, 13, 30} {
		c := HighDegree(d)
		for trial := 0; trial < 8; trial++ {
			evalBoth(t, c, rng.Elements(c.NumVars()))
		}
	}
}

// randomExpr builds a random expression over the given variables exercising
// every node kind — Var, Const, Add, Mul, Neg, and (nested) Pow.
func randomExpr(rng *ff.Rand, vars []string, depth int) expr.Expr {
	if depth == 0 {
		if rng.Intn(4) == 0 {
			return expr.C(int64(rng.Intn(11) - 5))
		}
		return expr.V(vars[rng.Intn(len(vars))])
	}
	switch rng.Intn(5) {
	case 0:
		n := 2 + rng.Intn(3)
		ops := make([]expr.Expr, n)
		for i := range ops {
			ops[i] = randomExpr(rng, vars, depth-1)
		}
		return expr.Sum(ops...)
	case 1:
		n := 2 + rng.Intn(2)
		ops := make([]expr.Expr, n)
		for i := range ops {
			ops[i] = randomExpr(rng, vars, depth-1)
		}
		return expr.Prod(ops...)
	case 2:
		return expr.Neg{Operand: randomExpr(rng, vars, depth-1)}
	case 3:
		// Pow, including Pow-of-Pow nesting one level down.
		return expr.P(randomExpr(rng, vars, depth-1), rng.Intn(4))
	default:
		return expr.Minus(randomExpr(rng, vars, depth-1), randomExpr(rng, vars, depth-1))
	}
}

func TestCompiledMatchesEvaluateRandomExpr(t *testing.T) {
	rng := ff.NewRand(42)
	vars := []string{"w1", "w2", "q1", "z"}
	built := 0
	for trial := 0; built < 60; trial++ {
		e := randomExpr(rng, vars, 3)
		monos := expr.Expand(e)
		if len(monos) == 0 {
			continue // expression collapsed to zero
		}
		c := FromExpr(fmt.Sprintf("rand%d", trial), -1, e, nil)
		built++
		for i := 0; i < 5; i++ {
			evalBoth(t, c, rng.Elements(c.NumVars()))
		}
		// Edge assignments: all zeros, all ones.
		zeros := make([]ff.Element, c.NumVars())
		evalBoth(t, c, zeros)
		ones := make([]ff.Element, c.NumVars())
		for i := range ones {
			ones[i] = ff.One()
		}
		evalBoth(t, c, ones)
	}
}

// TestCompiledNestedPow pins deep power nesting: ((x²)³)² = x¹² must expand
// and compile to the same value as the interpreter.
func TestCompiledNestedPow(t *testing.T) {
	rng := ff.NewRand(43)
	e := expr.P(expr.P(expr.P(expr.V("x"), 2), 3), 2)
	c := FromExpr("nested-pow", -1, e, nil)
	if got := c.Degree(); got != 12 {
		t.Fatalf("nested pow degree = %d, want 12", got)
	}
	for i := 0; i < 20; i++ {
		evalBoth(t, c, rng.Elements(1))
	}
	// Mixed: x¹²·y + 7·y³ − x.
	e2 := expr.Sum(
		expr.Prod(expr.P(expr.P(expr.V("x"), 4), 3), expr.V("y")),
		expr.Prod(expr.C(7), expr.P(expr.V("y"), 3)),
		expr.Neg{Operand: expr.V("x")},
	)
	c2 := FromExpr("mixed-pow", -1, e2, nil)
	for i := 0; i < 20; i++ {
		evalBoth(t, c2, rng.Elements(2))
	}
}

// TestCompileHoistsPowers checks the compiler's shared-power hoisting: a
// composite where three terms use w² must square w once per evaluation.
func TestCompileHoistsPowers(t *testing.T) {
	e := expr.Sum(
		expr.Prod(expr.V("q1"), expr.P(expr.V("w"), 2)),
		expr.Prod(expr.V("q2"), expr.P(expr.V("w"), 2)),
		expr.Prod(expr.V("q3"), expr.P(expr.V("w"), 2)),
	)
	c := FromExpr("hoist", -1, e, nil)
	prog := c.Compile()
	squares := 0
	for _, op := range prog.Ops {
		if op.Kind == OpSquare {
			squares++
		}
	}
	if squares != 1 {
		t.Fatalf("expected 1 hoisted square, got %d:\n%s", squares, prog.String())
	}
}

// TestCompileCaching: Compile must return the same program pointer on reuse.
func TestCompileCaching(t *testing.T) {
	c := VanillaGate()
	if c.Compile() != c.Compile() {
		t.Fatal("Compile does not cache")
	}
}
