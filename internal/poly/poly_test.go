package poly

import (
	"testing"

	"zkphire/internal/expr"
	"zkphire/internal/ff"
)

func TestRegistryAllValid(t *testing.T) {
	for id := 0; id < NumRegistered; id++ {
		c := Registered(id)
		if err := c.Validate(); err != nil {
			t.Fatalf("poly %d invalid: %v", id, err)
		}
		if c.ID != id {
			t.Fatalf("poly %d has ID %d", id, c.ID)
		}
		if c.Degree() < 1 {
			t.Fatalf("poly %d has degree %d", id, c.Degree())
		}
	}
}

func TestRegistryDegrees(t *testing.T) {
	// Spot-check the degrees the paper's analysis depends on.
	want := map[int]int{
		0:  3, // qadd·a·b? no: qmul·a·b is degree 3
		1:  3, // A·B·ftau
		2:  2,
		20: 4, // qM·w1·w2·fr
		22: 7, // qH·w^5·fr
		24: 2,
	}
	for id, d := range want {
		c := Registered(id)
		if got := c.Degree(); got != d {
			t.Errorf("poly %d degree = %d, want %d (%s)", id, got, d, c.String())
		}
	}
	// PermChecks: ϕ·D1..Dk·fr has degree k+2.
	if got := Registered(21).Degree(); got != 5 {
		t.Errorf("poly 21 degree = %d, want 5", got)
	}
	if got := Registered(23).Degree(); got != 7 {
		t.Errorf("poly 23 degree = %d, want 7", got)
	}
}

func TestVanillaGateEvaluate(t *testing.T) {
	c := VanillaGate()
	// A multiplication gate: qM=1, qO=1, w3 = w1·w2 should give
	// qM·w1w2 − qO·w3 = 0.
	assign := make([]ff.Element, c.NumVars())
	set := func(name string, v ff.Element) {
		i := c.VarIndex(name)
		if i < 0 {
			t.Fatalf("missing var %s", name)
		}
		assign[i] = v
	}
	rng := ff.NewRand(1)
	w1, w2 := rng.Element(), rng.Element()
	var w3 ff.Element
	w3.Mul(&w1, &w2)
	set("qM", ff.One())
	set("qO", ff.One())
	set("w1", w1)
	set("w2", w2)
	set("w3", w3)
	got := c.Evaluate(assign)
	if !got.IsZero() {
		t.Fatal("satisfied multiplication gate does not evaluate to 0")
	}
	// Corrupt the output: must be nonzero.
	var bad ff.Element
	bad.Add(&w3, &w1)
	set("w3", bad)
	got = c.Evaluate(assign)
	if got.IsZero() {
		t.Fatal("corrupted gate still evaluates to 0")
	}
}

func TestJellyfishGateStructure(t *testing.T) {
	c := JellyfishGate()
	// 13 terms: 4 linear + 2 mul + 4 power-5 + output + ecc + constant.
	if c.NumTerms() != 13 {
		t.Fatalf("Jellyfish gate has %d terms, want 13", c.NumTerms())
	}
	if c.Degree() != 6 {
		t.Fatalf("Jellyfish gate degree = %d, want 6 (qH·w^5)", c.Degree())
	}
	// Power-5 hash gate: qH1=1, all else 0, w1 = x, expect x^5.
	assign := make([]ff.Element, c.NumVars())
	x := ff.NewElement(3)
	assign[c.VarIndex("qH1")] = ff.One()
	assign[c.VarIndex("w1")] = x
	got := c.Evaluate(assign)
	want := ff.NewElement(243)
	if !got.Equal(&want) {
		t.Fatalf("qH1·w1^5 = %s, want 243", got.String())
	}
}

func TestPermCheckShape(t *testing.T) {
	alpha := ff.NewElement(7)
	c := VanillaPermCheck(alpha)
	// Terms: pi·fr, p1·p2·fr, α·ϕ·D1D2D3·fr, α·N1N2N3·fr → 4 terms.
	if c.NumTerms() != 4 {
		t.Fatalf("VanillaPermCheck has %d terms, want 4", c.NumTerms())
	}
	cj := JellyfishPermCheck(alpha)
	if cj.Degree() != 7 {
		t.Fatalf("JellyfishPermCheck degree = %d, want 7", cj.Degree())
	}
	if cj.MaxDistinctVars() != 7 {
		t.Fatalf("JellyfishPermCheck max distinct vars = %d, want 7 (ϕ·D1..D5·fr)", cj.MaxDistinctVars())
	}
}

func TestHighDegreeFamily(t *testing.T) {
	for d := 2; d <= 30; d += 7 {
		c := HighDegree(d)
		if got := c.Degree(); got != d+1 {
			t.Fatalf("HighDegree(%d) degree = %d, want %d", d, got, d+1)
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMulByEq(t *testing.T) {
	base := VanillaGate()
	z := base.MulByEq("fr")
	if z.NumVars() != base.NumVars()+1 {
		t.Fatal("MulByEq did not add a variable")
	}
	if z.Degree() != base.Degree()+1 {
		t.Fatal("MulByEq did not raise degree by 1")
	}
	frIdx := z.VarIndex("fr")
	if z.Roles[frIdx] != RoleEq {
		t.Fatal("fr role should be RoleEq")
	}
	for _, term := range z.Terms {
		found := false
		for _, f := range term.Factors {
			if f.Var == frIdx {
				found = true
			}
		}
		if !found {
			t.Fatal("a term is missing the eq factor")
		}
	}
}

func TestCompositeEvaluateMatchesExpr(t *testing.T) {
	rng := ff.NewRand(3)
	e := expr.Prod(expr.V("q"), expr.Minus(expr.P(expr.V("y"), 2), expr.Sum(expr.P(expr.V("x"), 3), expr.C(5))))
	c := FromExpr("curve", -1, e, nil)
	for trial := 0; trial < 20; trial++ {
		en := map[string]ff.Element{"q": rng.Element(), "x": rng.Element(), "y": rng.Element()}
		assign := make([]ff.Element, c.NumVars())
		for i, n := range c.VarNames {
			assign[i] = en[n]
		}
		want := expr.Eval(e, en)
		got := c.Evaluate(assign)
		if !got.Equal(&want) {
			t.Fatal("composite evaluation mismatch")
		}
	}
}

func TestRolesDefaulting(t *testing.T) {
	c := Registered(20) // VanillaZeroCheck
	for i, n := range c.VarNames {
		switch n {
		case "qL", "qR", "qO", "qM", "qC":
			if c.Roles[i] != RoleSelector {
				t.Errorf("%s role = %v, want selector", n, c.Roles[i])
			}
		case "w1", "w2", "w3":
			if c.Roles[i] != RoleWitness {
				t.Errorf("%s role = %v, want witness", n, c.Roles[i])
			}
		case "fr":
			if c.Roles[i] != RoleEq {
				t.Errorf("fr role = %v, want eq", c.Roles[i])
			}
		}
	}
}

func TestProductGate(t *testing.T) {
	c := ProductGate(3)
	if c.Degree() != 3 || c.NumTerms() != 1 {
		t.Fatal("ProductGate(3) shape wrong")
	}
	assign := []ff.Element{ff.NewElement(2), ff.NewElement(3), ff.NewElement(5)}
	got := c.Evaluate(assign)
	want := ff.NewElement(30)
	if !got.Equal(&want) {
		t.Fatal("ProductGate evaluation wrong")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	c := &Composite{
		Name:     "bad",
		VarNames: []string{"a"},
		Roles:    []Role{RoleWitness},
		Terms:    []Term{{Coeff: ff.One(), Factors: []Factor{{Var: 5, Power: 1}}}},
	}
	if err := c.Validate(); err == nil {
		t.Fatal("out-of-range var not caught")
	}
	c.Terms = []Term{{Coeff: ff.One(), Factors: []Factor{{Var: 0, Power: 0}}}}
	if err := c.Validate(); err == nil {
		t.Fatal("zero power not caught")
	}
	c.Terms = []Term{{Coeff: ff.One(), Factors: []Factor{{Var: 0, Power: 1}, {Var: 0, Power: 2}}}}
	if err := c.Validate(); err == nil {
		t.Fatal("repeated var not caught")
	}
}
