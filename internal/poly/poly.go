// Package poly defines the composite-polynomial intermediate representation
// shared by the software SumCheck prover and the hardware scheduler: a sum of
// terms, each term a coefficient times a product of constituent multilinear
// polynomials (with powers). It also carries the per-constituent sparsity
// roles the memory model needs, and registers every constraint from Table I
// of the paper.
package poly

import (
	"fmt"
	"sort"

	"zkphire/internal/expr"
	"zkphire/internal/ff"
)

// Role classifies a constituent MLE for the sparsity-aware memory model
// (Section IV-B1): selectors are almost entirely 0/1, witnesses are ~90%
// sparse, permutation/product MLEs are dense, and Eq MLEs are built on the
// fly in round 1.
type Role int

const (
	// RoleSelector marks enable polynomials (q_i): binary entries.
	RoleSelector Role = iota
	// RoleWitness marks witness polynomials (w_i): ~90% sparse.
	RoleWitness
	// RoleDense marks dense 255-bit MLEs (permutation, products, quotients).
	RoleDense
	// RoleEq marks eq(X, r) polynomials built on the fly during round 1.
	RoleEq
)

func (r Role) String() string {
	switch r {
	case RoleSelector:
		return "selector"
	case RoleWitness:
		return "witness"
	case RoleDense:
		return "dense"
	case RoleEq:
		return "eq"
	default:
		return "unknown"
	}
}

// Factor is one constituent MLE raised to a power within a term.
type Factor struct {
	Var   int // index into Composite.VarNames
	Power int
}

// Term is Coeff · Π factors.
type Term struct {
	Coeff   ff.Element
	Factors []Factor
}

// Degree returns the total degree of the term (sum of powers).
func (t Term) Degree() int {
	d := 0
	for _, f := range t.Factors {
		d += f.Power
	}
	return d
}

// DistinctVars returns the number of distinct constituent MLEs in the term —
// the quantity that occupies Extension Engine slots in the hardware.
func (t Term) DistinctVars() int { return len(t.Factors) }

// Composite is a sum-of-products polynomial over named constituent MLEs.
type Composite struct {
	Name     string
	ID       int // Table I identifier, or -1
	VarNames []string
	Roles    []Role
	Terms    []Term

	// prog caches the compiled straight-line evaluator (see compile.go).
	// Terms must not be mutated after the first Compile call.
	prog progCache
}

// NumVars returns the number of constituent MLEs.
func (c *Composite) NumVars() int { return len(c.VarNames) }

// Degree returns the composite degree: the maximum term degree. A SumCheck
// round polynomial for this composite needs Degree()+1 evaluations.
func (c *Composite) Degree() int {
	d := 0
	for _, t := range c.Terms {
		if td := t.Degree(); td > d {
			d = td
		}
	}
	return d
}

// NumTerms returns the number of product terms.
func (c *Composite) NumTerms() int { return len(c.Terms) }

// MaxDistinctVars returns the largest number of distinct MLEs in any term.
func (c *Composite) MaxDistinctVars() int {
	m := 0
	for _, t := range c.Terms {
		if v := t.DistinctVars(); v > m {
			m = v
		}
	}
	return m
}

// VarIndex returns the index for a constituent name, or -1.
func (c *Composite) VarIndex(name string) int {
	for i, n := range c.VarNames {
		if n == name {
			return i
		}
	}
	return -1
}

// Evaluate computes the composite value for a pointwise assignment of each
// constituent MLE (assign[i] is the value of VarNames[i]).
func (c *Composite) Evaluate(assign []ff.Element) ff.Element {
	if len(assign) != len(c.VarNames) {
		panic(fmt.Sprintf("poly: %s: %d assignments for %d vars", c.Name, len(assign), len(c.VarNames)))
	}
	var out ff.Element
	for _, t := range c.Terms {
		term := t.Coeff
		for _, f := range t.Factors {
			var p ff.Element
			p.ExpUint64(&assign[f.Var], uint64(f.Power))
			term.Mul(&term, &p)
		}
		out.Add(&out, &term)
	}
	return out
}

// Validate checks internal consistency (indices in range, positive powers).
func (c *Composite) Validate() error {
	if len(c.Roles) != len(c.VarNames) {
		return fmt.Errorf("poly %s: %d roles for %d vars", c.Name, len(c.Roles), len(c.VarNames))
	}
	for ti, t := range c.Terms {
		if len(t.Factors) == 0 && t.Coeff.IsZero() {
			return fmt.Errorf("poly %s: term %d is empty", c.Name, ti)
		}
		seen := map[int]bool{}
		for _, f := range t.Factors {
			if f.Var < 0 || f.Var >= len(c.VarNames) {
				return fmt.Errorf("poly %s: term %d references var %d out of range", c.Name, ti, f.Var)
			}
			if f.Power <= 0 {
				return fmt.Errorf("poly %s: term %d has non-positive power", c.Name, ti)
			}
			if seen[f.Var] {
				return fmt.Errorf("poly %s: term %d repeats var %d (merge powers)", c.Name, ti, f.Var)
			}
			seen[f.Var] = true
		}
	}
	return nil
}

// FromExpr expands a gate expression into a Composite. Roles default by
// naming convention (q* → selector, fr*/eq* → eq, w*/x*/y*/a/b/c… → witness)
// and can be overridden per name.
func FromExpr(name string, id int, e expr.Expr, roleOverride map[string]Role) *Composite {
	monos := expr.Expand(e)
	nameSet := map[string]bool{}
	for _, m := range monos {
		for _, v := range m.Vars {
			nameSet[v] = true
		}
	}
	varNames := make([]string, 0, len(nameSet))
	//zkvet:ignore determinism keys are collected then sorted two lines below; VarNames is deterministic for every expression
	for v := range nameSet {
		varNames = append(varNames, v)
	}
	sort.Strings(varNames)
	idx := map[string]int{}
	for i, v := range varNames {
		idx[v] = i
	}

	c := &Composite{Name: name, ID: id, VarNames: varNames}
	c.Roles = make([]Role, len(varNames))
	for i, v := range varNames {
		c.Roles[i] = defaultRole(v)
		if r, ok := roleOverride[v]; ok {
			c.Roles[i] = r
		}
	}

	for _, m := range monos {
		t := Term{Coeff: m.Coeff}
		// m.Vars is sorted; compress runs into powers.
		for i := 0; i < len(m.Vars); {
			j := i
			for j < len(m.Vars) && m.Vars[j] == m.Vars[i] {
				j++
			}
			t.Factors = append(t.Factors, Factor{Var: idx[m.Vars[i]], Power: j - i})
			i = j
		}
		c.Terms = append(c.Terms, t)
	}
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return c
}

func defaultRole(name string) Role {
	if name == "" {
		return RoleDense
	}
	switch {
	case len(name) >= 2 && name[:2] == "fr", len(name) >= 2 && name[:2] == "eq", name == "ftau":
		return RoleEq
	case name[0] == 'q':
		return RoleSelector
	case name[0] == 'w', name[0] == 'a', name[0] == 'b', name[0] == 'c',
		name[0] == 'x', name[0] == 'y', name == "lambda", name == "alpha",
		name == "beta", name == "gamma", name == "delta":
		return RoleWitness
	default:
		return RoleDense
	}
}

// MulByEq returns a copy of c with every term multiplied by a fresh eq
// constituent (the ZeroCheck f_r polynomial).
func (c *Composite) MulByEq(eqName string) *Composite {
	out := &Composite{
		Name:     c.Name + "*" + eqName,
		ID:       c.ID,
		VarNames: append(append([]string(nil), c.VarNames...), eqName),
		Roles:    append(append([]Role(nil), c.Roles...), RoleEq),
	}
	eqVar := len(c.VarNames)
	for _, t := range c.Terms {
		nt := Term{Coeff: t.Coeff, Factors: append(append([]Factor(nil), t.Factors...), Factor{Var: eqVar, Power: 1})}
		out.Terms = append(out.Terms, nt)
	}
	return out
}

// String renders the composite for diagnostics.
func (c *Composite) String() string {
	s := c.Name + " = "
	for i, t := range c.Terms {
		if i > 0 {
			s += " + "
		}
		if !t.Coeff.IsOne() {
			s += t.Coeff.String() + "·"
		}
		for fi, f := range t.Factors {
			if fi > 0 {
				s += "·"
			}
			s += c.VarNames[f.Var]
			if f.Power > 1 {
				s += fmt.Sprintf("^%d", f.Power)
			}
		}
	}
	return s
}
