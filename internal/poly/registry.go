package poly

import (
	"fmt"

	"zkphire/internal/expr"
	"zkphire/internal/ff"
)

// Table I of the paper: the 25 polynomial constraints used to evaluate the
// programmable SumCheck unit. IDs match the paper exactly.
//
//	0      Verifiable ASICs gate
//	1–2    Spartan
//	3–19   Halo2 elliptic-curve constraints
//	20–23  HyperPlonk ZeroCheck/PermCheck (Vanilla and Jellyfish)
//	24     OpenCheck
const NumRegistered = 25

// Registered returns constraint id from Table I. Scalars embedded in the
// constraint (α in the PermChecks) are fixed to a representative value; the
// live protocol rebuilds these composites with real transcript challenges.
func Registered(id int) *Composite {
	alpha := ff.NewElement(2)
	switch id {
	case 0:
		// q_add·(a+b) + q_mul·(a·b)
		e := expr.Sum(
			expr.Prod(expr.V("qadd"), expr.Sum(expr.V("a"), expr.V("b"))),
			expr.Prod(expr.V("qmul"), expr.V("a"), expr.V("b")),
		)
		return FromExpr("VerifiableASICs", 0, e, nil)
	case 1:
		// (A·B − C)·f_τ
		e := expr.Prod(expr.Minus(expr.Prod(expr.V("A"), expr.V("B")), expr.V("C")), expr.V("ftau"))
		return FromExpr("Spartan1", 1, e, map[string]Role{"A": RoleDense, "B": RoleDense, "C": RoleDense})
	case 2:
		// (Sum_ABC)·Z
		e := expr.Prod(expr.V("SumABC"), expr.V("Z"))
		return FromExpr("Spartan2", 2, e, map[string]Role{"SumABC": RoleDense, "Z": RoleDense})
	case 3:
		// q^{non-id}_point·(y² − x³ − 5)
		e := expr.Prod(expr.V("qnonid"), curveEq())
		return FromExpr("NonzeroPointCheck", 3, e, nil)
	case 4:
		// (q_point·x)·(y² − x³ − 5)
		e := expr.Prod(expr.V("qpoint"), expr.V("x"), curveEq())
		return FromExpr("XGatedCurveCheck", 4, e, nil)
	case 5:
		e := expr.Prod(expr.V("qpoint"), expr.V("y"), curveEq())
		return FromExpr("YGatedCurveCheck", 5, e, nil)
	case 6:
		// q_add-incomplete·((x_r + x_q + x_p)·(x_p − x_q)² − (y_p − y_q)²)
		inner := expr.Minus(
			expr.Prod(
				expr.Sum(expr.V("xr"), expr.V("xq"), expr.V("xp")),
				expr.P(expr.Minus(expr.V("xp"), expr.V("xq")), 2),
			),
			expr.P(expr.Minus(expr.V("yp"), expr.V("yq")), 2),
		)
		return FromExpr("IncompleteAdd1", 6, expr.Prod(expr.V("qaddinc"), inner), nil)
	case 7:
		// q_add-incomplete·((y_r + y_q)(x_p − x_q) − (y_p − y_q)(x_q − x_r))
		inner := expr.Minus(
			expr.Prod(expr.Sum(expr.V("yr"), expr.V("yq")), expr.Minus(expr.V("xp"), expr.V("xq"))),
			expr.Prod(expr.Minus(expr.V("yp"), expr.V("yq")), expr.Minus(expr.V("xq"), expr.V("xr"))),
		)
		return FromExpr("IncompleteAdd2", 7, expr.Prod(expr.V("qaddinc"), inner), nil)
	case 8:
		// q_add·(x_q − x_p)·((x_q − x_p)λ − (y_q − y_p))
		inner := expr.Prod(
			expr.Minus(expr.V("xq"), expr.V("xp")),
			expr.Minus(expr.Prod(expr.Minus(expr.V("xq"), expr.V("xp")), expr.V("lambda")), expr.Minus(expr.V("yq"), expr.V("yp"))),
		)
		return FromExpr("CompleteAdd1", 8, expr.Prod(expr.V("qadd"), inner), nil)
	case 9:
		// q_add·(1 − (x_q − x_p)α)·(2 y_p λ − 3 x_p²)
		inner := expr.Prod(
			expr.Minus(expr.C(1), expr.Prod(expr.Minus(expr.V("xq"), expr.V("xp")), expr.V("alpha"))),
			expr.Minus(expr.Prod(expr.C(2), expr.V("yp"), expr.V("lambda")), expr.Prod(expr.C(3), expr.P(expr.V("xp"), 2))),
		)
		return FromExpr("CompleteAdd2", 9, expr.Prod(expr.V("qadd"), inner), nil)
	case 10:
		return completeAddPair(10, "CompleteAdd3", expr.Minus(expr.V("xq"), expr.V("xp")), lambdaSq())
	case 11:
		return completeAddPair(11, "CompleteAdd4", expr.Minus(expr.V("xq"), expr.V("xp")), lambdaLine())
	case 12:
		return completeAddPair(12, "CompleteAdd5", expr.Sum(expr.V("yq"), expr.V("yp")), lambdaSq())
	case 13:
		return completeAddPair(13, "CompleteAdd6", expr.Sum(expr.V("yq"), expr.V("yp")), lambdaLine())
	case 14:
		return gatedDiff(14, "CompleteAdd7", "xp", "beta", "xr", "xq")
	case 15:
		return gatedDiff(15, "CompleteAdd8", "xp", "beta", "yr", "yq")
	case 16:
		return gatedDiff(16, "CompleteAdd9", "xq", "gamma", "xr", "xp")
	case 17:
		return gatedDiff(17, "CompleteAdd10", "xq", "gamma", "yr", "yp")
	case 18:
		return identityGate(18, "CompleteAdd11", "xr")
	case 19:
		return identityGate(19, "CompleteAdd12", "yr")
	case 20:
		return VanillaZeroCheck()
	case 21:
		return VanillaPermCheck(alpha)
	case 22:
		return JellyfishZeroCheck()
	case 23:
		return JellyfishPermCheck(alpha)
	case 24:
		return OpenCheck(6)
	default:
		panic(fmt.Sprintf("poly: unknown Table I id %d", id))
	}
}

// AllRegistered returns every Table I constraint in order.
func AllRegistered() []*Composite {
	out := make([]*Composite, NumRegistered)
	for i := range out {
		out[i] = Registered(i)
	}
	return out
}

// curveEq is y² − x³ − 5 (the Pallas-style curve equation used by Halo2's
// ECC gadget constraints in Table I).
func curveEq() expr.Expr {
	return expr.Sum(
		expr.P(expr.V("y"), 2),
		expr.Neg{Operand: expr.P(expr.V("x"), 3)},
		expr.C(-5),
	)
}

// lambdaSq is λ² − x_p − x_q − x_r.
func lambdaSq() expr.Expr {
	return expr.Sum(
		expr.P(expr.V("lambda"), 2),
		expr.Neg{Operand: expr.V("xp")},
		expr.Neg{Operand: expr.V("xq")},
		expr.Neg{Operand: expr.V("xr")},
	)
}

// lambdaLine is λ(x_p − x_r) − y_p − y_r.
func lambdaLine() expr.Expr {
	return expr.Sum(
		expr.Prod(expr.V("lambda"), expr.Minus(expr.V("xp"), expr.V("xr"))),
		expr.Neg{Operand: expr.V("yp")},
		expr.Neg{Operand: expr.V("yr")},
	)
}

// completeAddPair is q_add·x_p·x_q·sel·tail (Complete Addition 3–6).
func completeAddPair(id int, name string, sel, tail expr.Expr) *Composite {
	e := expr.Prod(expr.V("qadd"), expr.V("xp"), expr.V("xq"), sel, tail)
	return FromExpr(name, id, e, nil)
}

// gatedDiff is q_add·(1 − g·inv)·(a − b) (Complete Addition 7–10).
func gatedDiff(id int, name, g, inv, a, b string) *Composite {
	e := expr.Prod(
		expr.V("qadd"),
		expr.Minus(expr.C(1), expr.Prod(expr.V(g), expr.V(inv))),
		expr.Minus(expr.V(a), expr.V(b)),
	)
	return FromExpr(name, id, e, nil)
}

// identityGate is q_add·(1 − (x_q − x_p)α − (y_q + y_p)δ)·out
// (Complete Addition 11–12).
func identityGate(id int, name, out string) *Composite {
	e := expr.Prod(
		expr.V("qadd"),
		expr.Sum(
			expr.C(1),
			expr.Neg{Operand: expr.Prod(expr.Minus(expr.V("xq"), expr.V("xp")), expr.V("alpha"))},
			expr.Neg{Operand: expr.Prod(expr.Sum(expr.V("yq"), expr.V("yp")), expr.V("delta"))},
		),
		expr.V(out),
	)
	return FromExpr(name, id, e, nil)
}

// VanillaGate is the Plonk Vanilla gate WITHOUT the ZeroCheck eq factor:
// q_L w₁ + q_R w₂ − q_O w₃ + q_M w₁w₂ + q_C.
func VanillaGate() *Composite {
	e := expr.Sum(
		expr.Prod(expr.V("qL"), expr.V("w1")),
		expr.Prod(expr.V("qR"), expr.V("w2")),
		expr.Neg{Operand: expr.Prod(expr.V("qO"), expr.V("w3"))},
		expr.Prod(expr.V("qM"), expr.V("w1"), expr.V("w2")),
		expr.V("qC"),
	)
	return FromExpr("VanillaGate", -1, e, nil)
}

// VanillaZeroCheck is Table I poly 20: VanillaGate()·f_r.
func VanillaZeroCheck() *Composite {
	c := VanillaGate().MulByEq("fr")
	c.Name, c.ID = "VanillaZeroCheck", 20
	return c
}

// permCheck builds (π − p₁p₂ + α(ϕ·D₁…D_k − N₁…N_k))·f_r for k wires.
func permCheck(id int, name string, k int, alpha ff.Element) *Composite {
	dTerm := []expr.Expr{expr.V("phi")}
	nTerm := []expr.Expr{}
	for i := 1; i <= k; i++ {
		dTerm = append(dTerm, expr.V(fmt.Sprintf("D%d", i)))
		nTerm = append(nTerm, expr.V(fmt.Sprintf("N%d", i)))
	}
	e := expr.Sum(
		expr.V("pi"),
		expr.Neg{Operand: expr.Prod(expr.V("p1"), expr.V("p2"))},
		expr.Prod(expr.CE(alpha), expr.Minus(expr.Prod(dTerm...), expr.Prod(nTerm...))),
	)
	roles := map[string]Role{"pi": RoleDense, "p1": RoleDense, "p2": RoleDense, "phi": RoleDense}
	for i := 1; i <= k; i++ {
		roles[fmt.Sprintf("D%d", i)] = RoleDense
		roles[fmt.Sprintf("N%d", i)] = RoleDense
	}
	c := FromExpr(name, id, e, roles).MulByEq("fr")
	c.Name, c.ID = name, id
	return c
}

// VanillaPermCheck is Table I poly 21 (3 wires).
func VanillaPermCheck(alpha ff.Element) *Composite {
	return permCheck(21, "VanillaPermCheck", 3, alpha)
}

// PermCheckK builds the PermCheck constraint for an arbitrary wire count.
func PermCheckK(k int, alpha ff.Element) *Composite {
	return permCheck(-1, fmt.Sprintf("PermCheck%d", k), k, alpha)
}

// JellyfishGate is the Jellyfish custom gate WITHOUT the eq factor:
// Σ qᵢwᵢ + q_{M1}w₁w₂ + q_{M2}w₃w₄ + Σ q_{Hi}wᵢ⁵ − q_O w₅ + q_ecc w₁w₂w₃w₄ + q_C.
func JellyfishGate() *Composite {
	terms := []expr.Expr{}
	for i := 1; i <= 4; i++ {
		terms = append(terms, expr.Prod(expr.V(fmt.Sprintf("q%d", i)), expr.V(fmt.Sprintf("w%d", i))))
	}
	terms = append(terms,
		expr.Prod(expr.V("qM1"), expr.V("w1"), expr.V("w2")),
		expr.Prod(expr.V("qM2"), expr.V("w3"), expr.V("w4")),
	)
	for i := 1; i <= 4; i++ {
		terms = append(terms, expr.Prod(expr.V(fmt.Sprintf("qH%d", i)), expr.P(expr.V(fmt.Sprintf("w%d", i)), 5)))
	}
	terms = append(terms,
		expr.Neg{Operand: expr.Prod(expr.V("qO"), expr.V("w5"))},
		expr.Prod(expr.V("qecc"), expr.V("w1"), expr.V("w2"), expr.V("w3"), expr.V("w4")),
		expr.V("qC"),
	)
	return FromExpr("JellyfishGate", -1, expr.Sum(terms...), nil)
}

// JellyfishZeroCheck is Table I poly 22: JellyfishGate()·f_r.
func JellyfishZeroCheck() *Composite {
	c := JellyfishGate().MulByEq("fr")
	c.Name, c.ID = "JellyfishZeroCheck", 22
	return c
}

// JellyfishPermCheck is Table I poly 23 (5 wires).
func JellyfishPermCheck(alpha ff.Element) *Composite {
	return permCheck(23, "JellyfishPermCheck", 5, alpha)
}

// OpenCheck is Table I poly 24: Σ_k y_k·f_{r_k} for k committed polynomials.
func OpenCheck(k int) *Composite {
	terms := make([]expr.Expr, k)
	roles := map[string]Role{}
	for i := 0; i < k; i++ {
		y := fmt.Sprintf("y%d", i+1)
		fr := fmt.Sprintf("fr%d", i+1)
		terms[i] = expr.Prod(expr.V(y), expr.V(fr))
		roles[y] = RoleDense
		roles[fr] = RoleEq
	}
	c := FromExpr("OpenCheck", 24, expr.Sum(terms...), roles)
	return c
}

// HighDegree builds the Figure 7/8/14 sweep family
//
//	f = q₁w₁ + q₂w₂ + q₃·w₁^{d−1}·w₂ + q_c
//
// whose composite degree is d+1 (for d ≥ 2).
func HighDegree(d int) *Composite {
	if d < 2 {
		panic("poly: HighDegree requires d >= 2")
	}
	e := expr.Sum(
		expr.Prod(expr.V("q1"), expr.V("w1")),
		expr.Prod(expr.V("q2"), expr.V("w2")),
		expr.Prod(expr.V("q3"), expr.P(expr.V("w1"), d-1), expr.V("w2")),
		expr.V("qc"),
	)
	c := FromExpr(fmt.Sprintf("HighDegree%d", d), -1, e, nil)
	return c
}

// ProductGate returns A·B·C-style pure product polynomials of given width,
// used in Table II (the A·B·C SumChecks).
func ProductGate(width int) *Composite {
	vars := make([]expr.Expr, width)
	roles := map[string]Role{}
	for i := range vars {
		n := fmt.Sprintf("m%d", i+1)
		vars[i] = expr.V(n)
		roles[n] = RoleDense
	}
	return FromExpr(fmt.Sprintf("Product%d", width), -1, expr.Prod(vars...), roles)
}
