package poly

import (
	"fmt"
	"sync/atomic"

	"zkphire/internal/ff"
)

// This file compiles a Composite's expression DAG into a straight-line
// evaluation program once, so the SumCheck scan — which evaluates the
// composite at every hypercube point for every extension point t — runs a
// flat op list over a register file instead of walking terms, factors, and
// power loops per point. Compilation hoists the power chains: if several
// terms share w1², it is squared once per point, not once per term; powers
// are built by square-and-multiply; coefficient multiplications are emitted
// only for coefficients ≠ 1.
//
// Register layout: registers [0, NumInputs) are the per-point values of the
// constituent MLEs, in VarNames order — the caller loads them and the
// program never writes them. Registers [NumInputs, NumRegs) hold hoisted
// powers and one term scratch slot. The evaluation result is a separate
// accumulator, so a program evaluation is a pure function of the input
// registers.

// OpKind discriminates the compiled instruction set.
type OpKind uint8

const (
	// OpMul: R[Dst] = R[A]·R[B].
	OpMul OpKind = iota
	// OpSquare: R[Dst] = R[A]².
	OpSquare
	// OpMulConst: R[Dst] = R[A]·Consts[B].
	OpMulConst
	// OpAcc: acc += R[A].
	OpAcc
	// OpAccConst: acc += Consts[B] (a constant term).
	OpAccConst
)

// Op is one straight-line instruction. A and B index registers (or Consts
// for the B of OpMulConst); Dst is always a scratch register.
type Op struct {
	Kind   OpKind
	Dst, A uint16
	B      uint16
}

// Program is a compiled composite evaluator.
type Program struct {
	// NumInputs is the number of constituent MLEs (register file prefix).
	NumInputs int
	// NumRegs is the total register count the evaluator needs.
	NumRegs int
	// Consts holds term coefficients referenced by OpMulConst/OpAccConst.
	Consts []ff.Element
	// Ops is the instruction list, executed in order.
	Ops []Op
}

// Compile lowers the composite into a straight-line program. The result is
// cached on the composite (composites are shared read-only across prover
// goroutines; the cache is an atomic pointer, and a benign double-compile
// produces identical programs).
func (c *Composite) Compile() *Program {
	if p := c.prog.Load(); p != nil {
		return p
	}
	p := compile(c)
	c.prog.Store(p)
	return p
}

// prog backs Compile's cache; it lives on Composite (see poly.go).

func compile(c *Composite) *Program {
	nv := len(c.VarNames)
	p := &Program{NumInputs: nv}

	// Highest power needed per variable across all terms.
	maxPow := make([]int, nv)
	for _, t := range c.Terms {
		for _, f := range t.Factors {
			if f.Power > maxPow[f.Var] {
				maxPow[f.Var] = f.Power
			}
		}
	}

	// Allocate registers for powers 2..maxPow of each variable and emit the
	// chains (square for even powers, multiply-by-base for odd).
	next := uint16(nv)
	powReg := make(map[[2]int]uint16, nv)
	regOf := func(v, pow int) uint16 {
		if pow == 1 {
			return uint16(v)
		}
		return powReg[[2]int{v, pow}]
	}
	for v := 0; v < nv; v++ {
		for pow := 2; pow <= maxPow[v]; pow++ {
			dst := next
			next++
			powReg[[2]int{v, pow}] = dst
			if pow%2 == 0 {
				p.Ops = append(p.Ops, Op{Kind: OpSquare, Dst: dst, A: regOf(v, pow/2)})
			} else {
				p.Ops = append(p.Ops, Op{Kind: OpMul, Dst: dst, A: regOf(v, pow-1), B: uint16(v)})
			}
		}
	}
	tmp := next
	next++
	p.NumRegs = int(next)

	constIdx := func(e ff.Element) uint16 {
		for i := range p.Consts {
			if p.Consts[i].Equal(&e) {
				return uint16(i)
			}
		}
		p.Consts = append(p.Consts, e)
		return uint16(len(p.Consts) - 1)
	}

	oneE := ff.One()
	for _, t := range c.Terms {
		if len(t.Factors) == 0 {
			p.Ops = append(p.Ops, Op{Kind: OpAccConst, B: constIdx(t.Coeff)})
			continue
		}
		cur := regOf(t.Factors[0].Var, t.Factors[0].Power)
		for _, f := range t.Factors[1:] {
			p.Ops = append(p.Ops, Op{Kind: OpMul, Dst: tmp, A: cur, B: regOf(f.Var, f.Power)})
			cur = tmp
		}
		if !t.Coeff.Equal(&oneE) {
			p.Ops = append(p.Ops, Op{Kind: OpMulConst, Dst: tmp, A: cur, B: constIdx(t.Coeff)})
			cur = tmp
		}
		p.Ops = append(p.Ops, Op{Kind: OpAcc, A: cur})
	}
	return p
}

// Eval runs the program over a register file whose first NumInputs entries
// hold the constituent values (regs must have length >= NumRegs; entries
// beyond the inputs are scratch the program overwrites). It returns the
// composite's value at that point.
func (p *Program) Eval(regs []ff.Element) ff.Element {
	var acc ff.Element
	regs = regs[:p.NumRegs]
	for i := range p.Ops {
		op := &p.Ops[i]
		switch op.Kind {
		case OpMul:
			regs[op.Dst].Mul(&regs[op.A], &regs[op.B])
		case OpSquare:
			regs[op.Dst].Square(&regs[op.A])
		case OpMulConst:
			regs[op.Dst].Mul(&regs[op.A], &p.Consts[op.B])
		case OpAcc:
			acc.Add(&acc, &regs[op.A])
		case OpAccConst:
			acc.Add(&acc, &p.Consts[op.B])
		}
	}
	return acc
}

// String renders the program for diagnostics.
func (p *Program) String() string {
	s := fmt.Sprintf("program: %d inputs, %d regs, %d consts\n", p.NumInputs, p.NumRegs, len(p.Consts))
	for _, op := range p.Ops {
		switch op.Kind {
		case OpMul:
			s += fmt.Sprintf("  r%d = r%d * r%d\n", op.Dst, op.A, op.B)
		case OpSquare:
			s += fmt.Sprintf("  r%d = r%d^2\n", op.Dst, op.A)
		case OpMulConst:
			s += fmt.Sprintf("  r%d = r%d * c%d\n", op.Dst, op.A, op.B)
		case OpAcc:
			s += fmt.Sprintf("  acc += r%d\n", op.A)
		case OpAccConst:
			s += fmt.Sprintf("  acc += c%d\n", op.B)
		}
	}
	return s
}

// progCache is the atomic cache type embedded in Composite.
type progCache = atomic.Pointer[Program]
