// Package keccak implements the Keccak-f[1600] permutation and the sponge
// constructions SHA3-256 and Keccak-256. zkPHIRE uses a SHA3 IP block to
// generate Fiat–Shamir challenges between SumCheck rounds; this package is
// the software equivalent used by the transcript and modeled by the SHA3
// hardware unit.
package keccak

import "math/bits"

const (
	laneCount = 25
	rate256   = 136 // rate in bytes for 256-bit digests (capacity 512)
)

var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a, 0x8000000080008000,
	0x000000000000808b, 0x0000000080000001, 0x8000000080008081, 0x8000000000008009,
	0x000000000000008a, 0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089, 0x8000000000008003,
	0x8000000000008002, 0x8000000000000080, 0x000000000000800a, 0x800000008000000a,
	0x8000000080008081, 0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotation offsets for the rho step, indexed [x][y] flattened as x + 5y.
var rotc = [laneCount]int{
	0, 1, 62, 28, 27,
	36, 44, 6, 55, 20,
	3, 10, 43, 25, 39,
	41, 45, 15, 21, 8,
	18, 2, 61, 56, 14,
}

// permute applies Keccak-f[1600] in place.
func permute(a *[laneCount]uint64) {
	var c [5]uint64
	var d [5]uint64
	var b [laneCount]uint64
	for round := 0; round < 24; round++ {
		// theta
		for x := 0; x < 5; x++ {
			c[x] = a[x] ^ a[x+5] ^ a[x+10] ^ a[x+15] ^ a[x+20]
		}
		for x := 0; x < 5; x++ {
			d[x] = c[(x+4)%5] ^ bits.RotateLeft64(c[(x+1)%5], 1)
		}
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x+5*y] ^= d[x]
			}
		}
		// rho + pi
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				b[y+5*((2*x+3*y)%5)] = bits.RotateLeft64(a[x+5*y], rotc[x+5*y])
			}
		}
		// chi
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x+5*y] = b[x+5*y] ^ (^b[(x+1)%5+5*y] & b[(x+2)%5+5*y])
			}
		}
		// iota
		a[0] ^= roundConstants[round]
	}
}

// Hasher is a streaming Keccak sponge with a 256-bit output.
type Hasher struct {
	state   [laneCount]uint64
	buf     [rate256]byte
	bufLen  int
	dsbyte  byte // domain separation + first padding bit
	sponged bool
}

// NewSHA3256 returns a SHA3-256 hasher (FIPS 202 padding 0x06).
func NewSHA3256() *Hasher { return &Hasher{dsbyte: 0x06} }

// NewKeccak256 returns a legacy Keccak-256 hasher (padding 0x01), the variant
// used by Ethereum and by many ZKP transcript implementations.
func NewKeccak256() *Hasher { return &Hasher{dsbyte: 0x01} }

// Write absorbs p into the sponge. It never fails.
func (h *Hasher) Write(p []byte) (int, error) {
	if h.sponged {
		panic("keccak: write after Sum")
	}
	n := len(p)
	for len(p) > 0 {
		space := rate256 - h.bufLen
		take := len(p)
		if take > space {
			take = space
		}
		copy(h.buf[h.bufLen:], p[:take])
		h.bufLen += take
		p = p[take:]
		if h.bufLen == rate256 {
			h.absorbBlock()
		}
	}
	return n, nil
}

func (h *Hasher) absorbBlock() {
	for i := 0; i < rate256/8; i++ {
		var lane uint64
		for j := 0; j < 8; j++ {
			lane |= uint64(h.buf[8*i+j]) << (8 * j)
		}
		h.state[i] ^= lane
	}
	permute(&h.state)
	h.bufLen = 0
}

// Sum returns the 32-byte digest of everything written so far. The hasher is
// consumed: further writes panic.
func (h *Hasher) Sum() [32]byte {
	// pad: dsbyte ... 0x80 within the rate block
	h.buf[h.bufLen] = h.dsbyte
	for i := h.bufLen + 1; i < rate256; i++ {
		h.buf[i] = 0
	}
	h.buf[rate256-1] |= 0x80
	h.bufLen = rate256
	h.absorbBlock()
	h.sponged = true

	var out [32]byte
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			out[8*i+j] = byte(h.state[i] >> (8 * j))
		}
	}
	return out
}

// SHA3256 returns the SHA3-256 digest of data.
func SHA3256(data []byte) [32]byte {
	h := NewSHA3256()
	h.Write(data)
	return h.Sum()
}

// Keccak256 returns the legacy Keccak-256 digest of data.
func Keccak256(data []byte) [32]byte {
	h := NewKeccak256()
	h.Write(data)
	return h.Sum()
}
