package keccak

import (
	"bytes"
	"encoding/hex"
	"testing"
)

func fromHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestKeccak256Empty(t *testing.T) {
	// The well-known Ethereum empty-string hash.
	want := fromHex(t, "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470")
	got := Keccak256(nil)
	if !bytes.Equal(got[:], want) {
		t.Fatalf("Keccak256(\"\") = %x, want %x", got, want)
	}
}

func TestSHA3256Empty(t *testing.T) {
	// FIPS 202 SHA3-256 empty-message digest.
	want := fromHex(t, "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a")
	got := SHA3256(nil)
	if !bytes.Equal(got[:], want) {
		t.Fatalf("SHA3-256(\"\") = %x, want %x", got, want)
	}
	// SHA3 and Keccak must differ (padding differs).
	k := Keccak256(nil)
	if bytes.Equal(got[:], k[:]) {
		t.Fatal("SHA3-256 and Keccak-256 should differ on empty input")
	}
}

func TestStreamingMatchesOneShot(t *testing.T) {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	want := Keccak256(data)

	h := NewKeccak256()
	// Write in awkward chunk sizes straddling the 136-byte rate.
	for i := 0; i < len(data); {
		n := 1 + (i*13)%135
		if i+n > len(data) {
			n = len(data) - i
		}
		h.Write(data[i : i+n])
		i += n
	}
	got := h.Sum()
	if got != want {
		t.Fatal("streaming digest != one-shot digest")
	}
}

func TestRateBoundary(t *testing.T) {
	// Inputs of size rate-1, rate, rate+1 must all hash without panicking and
	// produce distinct digests.
	seen := map[[32]byte]bool{}
	for _, n := range []int{135, 136, 137, 271, 272, 273} {
		data := bytes.Repeat([]byte{0xab}, n)
		d := SHA3256(data)
		if seen[d] {
			t.Fatalf("duplicate digest for n=%d", n)
		}
		seen[d] = true
	}
}

func TestDifferentInputsDiffer(t *testing.T) {
	a := Keccak256([]byte("hello"))
	b := Keccak256([]byte("hellp"))
	if a == b {
		t.Fatal("collision on near-identical inputs")
	}
}

func TestWriteAfterSumPanics(t *testing.T) {
	h := NewSHA3256()
	h.Write([]byte("x"))
	h.Sum()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on write after Sum")
		}
	}()
	h.Write([]byte("y"))
}

func BenchmarkKeccak256_1KiB(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Keccak256(data)
	}
}
