package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"zkphire/internal/faultinject"
)

func openTemp(t *testing.T) (*Journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.SetSync(false)
	return j, path
}

func reopen(t *testing.T, j *Journal, path string) *Journal {
	t.Helper()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j2.SetSync(false)
	return j2
}

func TestLifecycleSurvivesReopen(t *testing.T) {
	j, path := openTemp(t)
	spec := []byte(`{"program":[{"op":"secret","k":3}]}`)
	if err := j.RecordCircuit("c1", spec); err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("job-a", "c1", 5000); err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("job-b", "c1", 0); err != nil {
		t.Fatal(err)
	}
	if err := j.Complete("job-a", []byte("proofbytes")); err != nil {
		t.Fatal(err)
	}
	if err := j.Fail("job-c", "nope"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("Fail(unknown) = %v, want ErrUnknownKey", err)
	}

	j = reopen(t, j, path)
	defer j.Close()
	if st := j.Stats(); st.Records != 4 || st.TruncatedBytes != 0 {
		t.Fatalf("stats = %+v, want 4 records, clean tail", st)
	}
	got, ok := j.Spec("c1")
	if !ok || !bytes.Equal(got, spec) {
		t.Fatalf("Spec(c1) = %q, %v", got, ok)
	}
	a, ok := j.Lookup("job-a")
	if !ok || a.State != StateDone || !bytes.Equal(a.Proof, []byte("proofbytes")) {
		t.Fatalf("job-a = %+v, %v", a, ok)
	}
	pending := j.Pending()
	if len(pending) != 1 || pending[0].Key != "job-b" || pending[0].CircuitID != "c1" {
		t.Fatalf("pending = %+v, want [job-b]", pending)
	}
}

func TestDuplicateKeys(t *testing.T) {
	j, _ := openTemp(t)
	defer j.Close()
	j.RecordCircuit("c1", []byte(`{}`))
	if err := j.Accept("k", "c1", 0); err != nil {
		t.Fatal(err)
	}
	if err := j.Accept("k", "c1", 0); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("pending re-accept = %v, want ErrDuplicateKey", err)
	}
	j.Complete("k", []byte("p"))
	if err := j.Accept("k", "c1", 0); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("done re-accept = %v, want ErrDuplicateKey", err)
	}
	// A failed key may be re-accepted (the client is retrying a permanent
	// failure with fresh hope — or a fixed server).
	j.RecordCircuit("c2", []byte(`{}`))
	if err := j.Accept("k2", "c2", 0); err != nil {
		t.Fatal(err)
	}
	j.Fail("k2", "boom")
	if err := j.Accept("k2", "c2", 0); err != nil {
		t.Fatalf("failed re-accept = %v, want nil", err)
	}
}

func TestAcceptRequiresJournaledCircuit(t *testing.T) {
	j, _ := openTemp(t)
	defer j.Close()
	if err := j.Accept("k", "ghost", 0); err == nil {
		t.Fatal("accept against an unjournaled circuit succeeded")
	}
}

// TestTornTailIsTruncated simulates a crash mid-append: the torn fault
// point kills the second half of the frame, and reopen must cut the tail
// and keep every settled record.
func TestTornTailIsTruncated(t *testing.T) {
	j, path := openTemp(t)
	j.RecordCircuit("c1", []byte(`{}`))
	if err := j.Accept("settled", "c1", 0); err != nil {
		t.Fatal(err)
	}

	faultinject.Reset()
	faultinject.Arm("journal.torn", faultinject.Fault{Mode: faultinject.ModeError, Count: 1})
	err := j.Accept("torn", "c1", 0)
	faultinject.Reset()
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("torn append error = %v", err)
	}
	// The failed append must not poison the journal: later appends and
	// reopen both see a consistent log.
	if err := j.Accept("after", "c1", 0); err != nil {
		t.Fatalf("append after torn write: %v", err)
	}

	j = reopen(t, j, path)
	defer j.Close()
	if _, ok := j.Lookup("torn"); ok {
		t.Fatal("torn accept survived")
	}
	for _, key := range []string{"settled", "after"} {
		if r, ok := j.Lookup(key); !ok || r.State != StatePending {
			t.Fatalf("settled record %q lost: %+v, %v", key, r, ok)
		}
	}
}

// TestTornTailOnDisk crafts a half-written frame directly (the crash
// case: the process died, nothing cleaned up) and checks Open truncates
// exactly the torn bytes.
func TestTornTailOnDisk(t *testing.T) {
	j, path := openTemp(t)
	j.RecordCircuit("c1", []byte(`{}`))
	j.Accept("good", "c1", 0)
	j.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	garbage := []byte{40, 0, 0, 0, 2, 0, 0} // a 7-byte fragment of a record header
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if st := j2.Stats(); st.TruncatedBytes != int64(len(garbage)) {
		t.Fatalf("truncated %d bytes, want %d", st.TruncatedBytes, len(garbage))
	}
	if r, ok := j2.Lookup("good"); !ok || r.State != StatePending {
		t.Fatalf("settled record lost after torn-tail truncation: %+v %v", r, ok)
	}
}

// TestMidFileCorruptionIsFatal: a flipped bit in a settled record is not
// a torn tail and must fail loudly, not silently drop jobs.
func TestMidFileCorruptionIsFatal(t *testing.T) {
	j, path := openTemp(t)
	j.RecordCircuit("c1", []byte(`{"some":"spec"}`))
	j.Accept("a", "c1", 0)
	j.Accept("b", "c1", 0)
	j.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[fileHeaderSize+recHeaderSize+4] ^= 0x01 // flip one payload bit of record 0
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open(corrupt middle) = %v, want ErrCorrupt", err)
	}
}

func TestCompactKeepsLiveState(t *testing.T) {
	j, path := openTemp(t)
	j.RecordCircuit("c1", []byte(`{"v":1}`))
	j.RecordCircuit("c2", []byte(`{"v":2}`))
	j.Accept("done", "c1", 0)
	j.Complete("done", []byte("proof-1"))
	j.Accept("pending", "c2", 123)
	j.Accept("failed", "c1", 0)
	j.Fail("failed", "witness exploded")

	before, _ := os.Stat(path)
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compact did not shrink: %d -> %d", before.Size(), after.Size())
	}

	// State must survive both the in-memory swap and a reopen.
	check := func(j *Journal) {
		t.Helper()
		if r, ok := j.Lookup("done"); !ok || r.State != StateDone || !bytes.Equal(r.Proof, []byte("proof-1")) {
			t.Fatalf("done = %+v %v", r, ok)
		}
		if r, ok := j.Lookup("failed"); !ok || r.State != StateFailed || r.Error != "witness exploded" {
			t.Fatalf("failed = %+v %v", r, ok)
		}
		p := j.Pending()
		if len(p) != 1 || p[0].Key != "pending" || p[0].TimeoutMS != 123 {
			t.Fatalf("pending = %+v", p)
		}
		if _, ok := j.Spec("c2"); !ok {
			t.Fatal("spec for pending job's circuit dropped")
		}
		if _, ok := j.Spec("c1"); ok {
			t.Fatal("spec with no pending reference survived compact")
		}
	}
	check(j)
	j = reopen(t, j, path)
	check(j)
	// Appends must keep working on the swapped handle.
	j.RecordCircuit("c3", []byte(`{"v":3}`))
	if err := j.Accept("late", "c3", 0); err != nil {
		t.Fatal(err)
	}
	j = reopen(t, j, path)
	defer j.Close()
	if r, ok := j.Lookup("late"); !ok || r.State != StatePending {
		t.Fatalf("post-compact append lost: %+v %v", r, ok)
	}
}

func TestAppendFaultSurfacesError(t *testing.T) {
	j, _ := openTemp(t)
	defer j.Close()
	faultinject.Reset()
	faultinject.Arm("journal.append", faultinject.Fault{Mode: faultinject.ModeError, Count: 1})
	defer faultinject.Reset()
	err := j.RecordCircuit("c1", []byte(`{}`))
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	// Retry after the transient fault succeeds.
	if err := j.RecordCircuit("c1", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyAndHeaderOnlyFiles(t *testing.T) {
	dir := t.TempDir()
	// Torn header (crash during create): start over.
	path := filepath.Join(dir, "torn-header.journal")
	if err := os.WriteFile(path, fileMagic[:4], 0o600); err != nil {
		t.Fatal(err)
	}
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.RecordCircuit("c", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Wrong magic: refuse.
	bad := filepath.Join(dir, "bad.journal")
	if err := os.WriteFile(bad, bytes.Repeat([]byte{0xAB}, 64), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open(bad magic) = %v, want ErrCorrupt", err)
	}
}
