// Package journal is the zkphired daemon's crash-safe write-ahead job
// journal: every accepted prove job is durably recorded — with its
// client-supplied idempotency key, circuit ID, and enough of the circuit
// (the registered CircuitSpec JSON) to rebuild the proving session — before
// the prover touches it, and marked complete (proof bytes attached) or
// failed afterwards. A daemon that dies mid-batch reopens the journal on
// restart, finds the accepted-but-unfinished jobs, and replays them; with a
// deterministic SRS the replayed proofs are byte-identical to an
// uninterrupted run, and completed entries answer client retries of the
// same idempotency key with the stored proof instead of proving twice.
//
// The on-disk format follows internal/spill's framing discipline — fixed
// little-endian headers, CRC-64/ECMA over every payload — as an
// append-only record log:
//
//	file   := header record*
//	header := magic[8] version[u32] reserved[u32]
//	record := payloadLen[u32] kind[u32] crc64[u64] payload[payloadLen]
//
// The CRC covers the kind word and the payload, so a bit flip in either
// is caught. Appends are written frame-at-a-time and fsynced before the
// caller proceeds; a crash can therefore leave at most one torn record at
// the tail, which Open detects (short frame or CRC mismatch) and truncates
// away — a torn accept never happened, which is correct because its client
// never got an acknowledgement. Corruption *before* the tail (flipped
// bits in settled records) is not silently dropped: Open fails with
// ErrCorrupt rather than guess at job state.
//
// Compact rewrites the journal to just its live state (pending jobs, the
// circuits they need, and finished entries still useful for idempotency)
// through a temp file + atomic rename, so restarts bound the log instead
// of replaying unbounded history. See DESIGN.md §9.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"
	"sync"

	"zkphire/internal/faultinject"
)

const (
	fileHeaderSize = 8 + 4 + 4
	recHeaderSize  = 4 + 4 + 8

	version = 1

	// maxPayload bounds a single record (a proof is a few KB; a spec for a
	// 2^20-op program is ~64 MB) so a corrupt length word cannot drive a
	// giant allocation.
	maxPayload = 128 << 20
)

var fileMagic = [8]byte{'Z', 'K', 'J', 'R', 'N', 'L', '1', 0}

var crcTable = crc64.MakeTable(crc64.ECMA)

// Record kinds.
const (
	kindCircuit  = 1 // a registered circuit: id + spec JSON
	kindAccept   = 2 // an accepted prove job: key, circuit, timeout
	kindComplete = 3 // job done: key + proof bytes
	kindFail     = 4 // job permanently failed: key + reason
)

// ErrCorrupt reports settled journal records that fail validation —
// anything worse than a torn tail.
var ErrCorrupt = errors.New("journal: corrupt record")

// ErrClosed reports use after Close.
var ErrClosed = errors.New("journal: closed")

// ErrDuplicateKey reports an Accept whose idempotency key is already
// pending or completed. The service resolves these before accepting, so
// hitting it means two racing accepts — the second loses.
var ErrDuplicateKey = errors.New("journal: duplicate idempotency key")

// ErrUnknownKey reports a Complete/Fail for a key never accepted.
var ErrUnknownKey = errors.New("journal: unknown idempotency key")

// State is a journaled job's lifecycle position.
type State int

const (
	// StatePending is accepted-but-unfinished: the set replayed on restart.
	StatePending State = iota
	// StateDone carries the proof bytes.
	StateDone
	// StateFailed is a permanent failure (retries exhausted or
	// non-transient error); the reason is stored.
	StateFailed
)

func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Record is one job's journaled state.
type Record struct {
	Key       string `json:"key"`
	CircuitID string `json:"circuit_id"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
	State     State  `json:"-"`
	Proof     []byte `json:"-"` // set when State == StateDone
	Error     string `json:"-"` // set when State == StateFailed
}

type circuitPayload struct {
	CircuitID string          `json:"circuit_id"`
	Spec      json.RawMessage `json:"spec"`
}

type completePayload struct {
	Key   string `json:"key"`
	Proof []byte `json:"proof"`
}

type failPayload struct {
	Key   string `json:"key"`
	Error string `json:"error"`
}

// Stats describes what Open found.
type Stats struct {
	// Records is the number of settled records replayed.
	Records int
	// TruncatedBytes is the size of the torn tail Open cut off (0 for a
	// clean shutdown).
	TruncatedBytes int64
}

// Journal is the open job journal. All methods are safe for concurrent
// use; appends are serialized and fsynced before they return.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	sync  bool
	stats Stats

	circuits map[string]json.RawMessage // circuit_id -> spec
	jobs     map[string]*Record         // idempotency key -> state
	order    []string                   // accept order of pending+done+failed keys
	closed   bool
}

// Open opens (creating if needed) the journal at path, replays its
// records into memory, and truncates any torn tail record. The parent
// directory must exist.
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{
		f:        f,
		path:     path,
		sync:     true,
		circuits: make(map[string]json.RawMessage),
		jobs:     make(map[string]*Record),
	}
	if err := j.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// SetSync disables (or re-enables) the per-append fsync. Only tests that
// hammer the journal turn it off; the daemon always runs synced.
func (j *Journal) SetSync(on bool) {
	j.mu.Lock()
	j.sync = on
	j.mu.Unlock()
}

// Stats returns what Open found (replayed record count, torn bytes cut).
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// replay loads existing records, validating header and CRCs, truncating a
// torn tail, and rebuilding the in-memory state.
func (j *Journal) replay() error {
	info, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if info.Size() == 0 {
		var hdr [fileHeaderSize]byte
		copy(hdr[:8], fileMagic[:])
		binary.LittleEndian.PutUint32(hdr[8:12], version)
		if _, err := j.f.Write(hdr[:]); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		return j.syncFile()
	}
	if info.Size() < fileHeaderSize {
		// A torn header can only come from a crash during the very first
		// create: nothing was journaled, start over.
		return j.reset()
	}
	var hdr [fileHeaderSize]byte
	if _, err := j.f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("journal: header: %w", err)
	}
	if [8]byte(hdr[:8]) != fileMagic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != version {
		return fmt.Errorf("%w: version %d, want %d", ErrCorrupt, v, version)
	}

	off := int64(fileHeaderSize)
	size := info.Size()
	var rh [recHeaderSize]byte
	for off < size {
		if size-off < recHeaderSize {
			return j.truncate(off, size-off) // torn record header at the tail
		}
		if _, err := j.f.ReadAt(rh[:], off); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		payLen := int64(binary.LittleEndian.Uint32(rh[0:4]))
		kind := binary.LittleEndian.Uint32(rh[4:8])
		wantCRC := binary.LittleEndian.Uint64(rh[8:16])
		if payLen > maxPayload {
			return fmt.Errorf("%w: record at %d claims %d payload bytes", ErrCorrupt, off, payLen)
		}
		if size-off-recHeaderSize < payLen {
			return j.truncate(off, size-off) // torn payload at the tail
		}
		payload := make([]byte, payLen)
		if _, err := j.f.ReadAt(payload, off+recHeaderSize); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		if recordCRC(kind, payload) != wantCRC {
			if off+recHeaderSize+payLen == size {
				return j.truncate(off, size-off) // torn tail: half-written frame
			}
			return fmt.Errorf("%w: checksum mismatch at offset %d (not the tail)", ErrCorrupt, off)
		}
		if err := j.apply(kind, payload); err != nil {
			return err
		}
		j.stats.Records++
		off += recHeaderSize + payLen
	}
	return nil
}

// reset restarts an unreadably-young journal file (torn during creation).
func (j *Journal) reset() error {
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	var hdr [fileHeaderSize]byte
	copy(hdr[:8], fileMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], version)
	if _, err := j.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return j.syncFile()
}

// truncate cuts a torn tail and records how much was dropped.
func (j *Journal) truncate(off, torn int64) error {
	if err := j.f.Truncate(off); err != nil {
		return fmt.Errorf("journal: truncating torn tail: %w", err)
	}
	j.stats.TruncatedBytes = torn
	return j.syncFile()
}

// apply folds one settled record into the in-memory state. Replay
// tolerates benign duplicates (a circuit journaled twice) but treats
// impossible sequences as corruption.
func (j *Journal) apply(kind uint32, payload []byte) error {
	switch kind {
	case kindCircuit:
		var p circuitPayload
		if err := json.Unmarshal(payload, &p); err != nil {
			return fmt.Errorf("%w: circuit record: %v", ErrCorrupt, err)
		}
		j.circuits[p.CircuitID] = p.Spec
	case kindAccept:
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			return fmt.Errorf("%w: accept record: %v", ErrCorrupt, err)
		}
		r.State = StatePending
		if old, ok := j.jobs[r.Key]; ok && old.State != StateFailed {
			return fmt.Errorf("%w: duplicate accept for key %q", ErrCorrupt, r.Key)
		} else if !ok {
			j.order = append(j.order, r.Key)
		}
		j.jobs[r.Key] = &r
	case kindComplete:
		var p completePayload
		if err := json.Unmarshal(payload, &p); err != nil {
			return fmt.Errorf("%w: complete record: %v", ErrCorrupt, err)
		}
		r, ok := j.jobs[p.Key]
		if !ok {
			return fmt.Errorf("%w: complete for unknown key %q", ErrCorrupt, p.Key)
		}
		r.State = StateDone
		r.Proof = p.Proof
	case kindFail:
		var p failPayload
		if err := json.Unmarshal(payload, &p); err != nil {
			return fmt.Errorf("%w: fail record: %v", ErrCorrupt, err)
		}
		r, ok := j.jobs[p.Key]
		if !ok {
			return fmt.Errorf("%w: fail for unknown key %q", ErrCorrupt, p.Key)
		}
		r.State = StateFailed
		r.Error = p.Error
	default:
		return fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, kind)
	}
	return nil
}

func recordCRC(kind uint32, payload []byte) uint64 {
	var k [4]byte
	binary.LittleEndian.PutUint32(k[:], kind)
	crc := crc64.Update(0, crcTable, k[:])
	return crc64.Update(crc, crcTable, payload)
}

// append frames, writes, and fsyncs one record. Caller holds j.mu. The
// frame is written in two parts with a fault point between them so the
// chaos harness can produce genuinely torn tails.
func (j *Journal) append(kind uint32, payload []byte) error {
	if j.closed {
		return ErrClosed
	}
	if err := faultinject.Hit("journal.append"); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	frame := make([]byte, recHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], kind)
	binary.LittleEndian.PutUint64(frame[8:16], recordCRC(kind, payload))
	copy(frame[recHeaderSize:], payload)

	end, err := j.f.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	half := len(frame) / 2
	if _, err := j.f.Write(frame[:half]); err != nil {
		j.f.Truncate(end)
		return fmt.Errorf("journal: %w", err)
	}
	// A crash armed here leaves a half-written frame — the torn tail the
	// replay path must cut. In error mode the half-frame is truncated away
	// (a journal that cannot tell how much of a failed write landed must
	// cut back to the last settled record) and the append fails.
	if ferr := faultinject.Hit("journal.torn"); ferr != nil {
		j.f.Truncate(end)
		return fmt.Errorf("journal: torn write: %w", ferr)
	}
	if _, err := j.f.Write(frame[half:]); err != nil {
		j.f.Truncate(end)
		return fmt.Errorf("journal: %w", err)
	}
	return j.syncFile()
}

func (j *Journal) syncFile() error {
	if !j.sync {
		return nil
	}
	if err := faultinject.Hit("journal.sync"); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	return nil
}

// RecordCircuit journals a registered circuit's spec so replay can
// rebuild its proving session. Idempotent per circuit ID.
func (j *Journal) RecordCircuit(circuitID string, spec []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if _, ok := j.circuits[circuitID]; ok {
		return nil
	}
	payload, err := json.Marshal(circuitPayload{CircuitID: circuitID, Spec: spec})
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.append(kindCircuit, payload); err != nil {
		return err
	}
	j.circuits[circuitID] = append([]byte(nil), spec...)
	return nil
}

// Accept durably records a prove job before it runs. The returned error
// is ErrDuplicateKey when the key is already pending or done (a failed
// key may be re-accepted). The journaled circuit must exist.
func (j *Journal) Accept(key, circuitID string, timeoutMS int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if old, ok := j.jobs[key]; ok && old.State != StateFailed {
		return fmt.Errorf("%w: %q (%s)", ErrDuplicateKey, key, old.State)
	}
	if _, ok := j.circuits[circuitID]; !ok {
		return fmt.Errorf("journal: accept %q: circuit %s not journaled", key, circuitID)
	}
	r := Record{Key: key, CircuitID: circuitID, TimeoutMS: timeoutMS}
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.append(kindAccept, payload); err != nil {
		return err
	}
	if _, ok := j.jobs[key]; !ok {
		j.order = append(j.order, key)
	}
	r.State = StatePending
	j.jobs[key] = &r
	return nil
}

// Complete marks a pending job done and stores its proof bytes.
func (j *Journal) Complete(key string, proof []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	r, ok := j.jobs[key]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownKey, key)
	}
	payload, err := json.Marshal(completePayload{Key: key, Proof: proof})
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.append(kindComplete, payload); err != nil {
		return err
	}
	r.State = StateDone
	r.Proof = append([]byte(nil), proof...)
	r.Error = ""
	return nil
}

// Fail marks a pending job permanently failed with a reason.
func (j *Journal) Fail(key, reason string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	r, ok := j.jobs[key]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownKey, key)
	}
	payload, err := json.Marshal(failPayload{Key: key, Error: reason})
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.append(kindFail, payload); err != nil {
		return err
	}
	r.State = StateFailed
	r.Error = reason
	return nil
}

// Lookup returns the journaled state of an idempotency key.
func (j *Journal) Lookup(key string) (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.jobs[key]
	if !ok {
		return Record{}, false
	}
	return cloneRecord(r), true
}

// Pending returns accepted-but-unfinished jobs in accept order — the
// restart replay set.
func (j *Journal) Pending() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Record
	for _, key := range j.order {
		if r := j.jobs[key]; r.State == StatePending {
			out = append(out, cloneRecord(r))
		}
	}
	return out
}

// Circuits returns every journaled circuit spec, keyed by circuit ID.
// The cluster coordinator seeds its replication store from it on restart,
// so workers can content-hash-fetch circuits the previous process
// registered. The returned map and its values are copies.
func (j *Journal) Circuits() map[string][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string][]byte, len(j.circuits))
	for id, spec := range j.circuits {
		out[id] = append([]byte(nil), spec...)
	}
	return out
}

// Spec returns the journaled CircuitSpec JSON for a circuit ID.
func (j *Journal) Spec(circuitID string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	spec, ok := j.circuits[circuitID]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), spec...), true
}

// Len returns the number of journaled jobs (any state).
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.jobs)
}

func cloneRecord(r *Record) Record {
	c := *r
	c.Proof = append([]byte(nil), r.Proof...)
	return c
}

// Compact rewrites the journal to its live state: pending jobs and the
// circuits they reference, plus done/failed entries (kept so client
// retries of a settled idempotency key still answer from the journal).
// The rewrite goes through a temp file and an atomic rename, so a crash
// mid-compact leaves either the old journal or the new one, never a mix.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	dir, base := filepath.Split(j.path)
	tmp, err := os.CreateTemp(dir, base+".compact-*")
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	defer os.Remove(tmp.Name())

	w := func(kind uint32, payload []byte) error {
		var rh [recHeaderSize]byte
		binary.LittleEndian.PutUint32(rh[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(rh[4:8], kind)
		binary.LittleEndian.PutUint64(rh[8:16], recordCRC(kind, payload))
		if _, err := tmp.Write(rh[:]); err != nil {
			return err
		}
		_, err := tmp.Write(payload)
		return err
	}

	var hdr [fileHeaderSize]byte
	copy(hdr[:8], fileMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], version)
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: compact: %w", err)
	}
	// Circuits still needed: those referenced by a pending job.
	needed := make(map[string]bool)
	for _, key := range j.order {
		if r := j.jobs[key]; r.State == StatePending {
			needed[r.CircuitID] = true
		}
	}
	for id := range needed {
		payload, err := json.Marshal(circuitPayload{CircuitID: id, Spec: j.circuits[id]})
		if err != nil {
			tmp.Close()
			return fmt.Errorf("journal: compact: %w", err)
		}
		if err := w(kindCircuit, payload); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: compact: %w", err)
		}
	}
	for _, key := range j.order {
		r := j.jobs[key]
		accept, err := json.Marshal(Record{Key: r.Key, CircuitID: r.CircuitID, TimeoutMS: r.TimeoutMS})
		if err != nil {
			tmp.Close()
			return fmt.Errorf("journal: compact: %w", err)
		}
		if err := w(kindAccept, accept); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: compact: %w", err)
		}
		switch r.State {
		case StateDone:
			payload, err := json.Marshal(completePayload{Key: r.Key, Proof: r.Proof})
			if err == nil {
				err = w(kindComplete, payload)
			}
			if err != nil {
				tmp.Close()
				return fmt.Errorf("journal: compact: %w", err)
			}
		case StateFailed:
			payload, err := json.Marshal(failPayload{Key: r.Key, Error: r.Error})
			if err == nil {
				err = w(kindFail, payload)
			}
			if err != nil {
				tmp.Close()
				return fmt.Errorf("journal: compact: %w", err)
			}
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	// Swap the handle to the new file; drop circuits no pending job needs.
	old := j.f
	f, err := os.OpenFile(j.path, os.O_RDWR, 0o600)
	if err != nil {
		return fmt.Errorf("journal: compact: reopening: %w", err)
	}
	j.f = f
	old.Close()
	for id := range j.circuits {
		if !needed[id] {
			delete(j.circuits, id)
		}
	}
	return nil
}

// Close fsyncs and closes the journal file. The file stays on disk —
// that is the point.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	var firstErr error
	if j.sync {
		if err := j.f.Sync(); err != nil {
			firstErr = fmt.Errorf("journal: %w", err)
		}
	}
	if err := j.f.Close(); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("journal: %w", err)
	}
	return firstErr
}
