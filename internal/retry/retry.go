// Package retry is the failure-handling policy layer shared by the
// zkphired service and its clients: exponential backoff with jitter,
// a transient/permanent error classification, and an HTTP JSON client
// helper that honours Retry-After.
//
// Server side, the job queue wraps each prove attempt in Do so transient
// failures — spill I/O hiccups, offloaded-SRS read errors, injected
// faults — are retried a bounded number of times before the job fails for
// real; panics and context cancellations are never retried. Client side,
// PostJSON retries admission-control rejections (429/503) after the
// server-suggested delay, which is how examples/serving rides out a
// saturated prover. See DESIGN.md §9.
package retry

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Policy shapes a retry loop. The zero value is usable: 3 attempts,
// 10 ms base delay doubling to a 2 s cap, 20% jitter.
type Policy struct {
	// MaxAttempts is the total number of tries (first attempt included);
	// <= 0 means 3. 1 disables retries.
	MaxAttempts int
	// BaseDelay is the sleep after the first failure (<= 0 means 10 ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown delay (<= 0 means 2 s).
	MaxDelay time.Duration
	// Multiplier grows the delay each attempt (< 1 means 2).
	Multiplier float64
	// Jitter is the random fraction added to each delay, in [0, 1]
	// (negative means 0.2): delay × (1 + Jitter·U[0,1)). Jitter breaks
	// retry synchronization between jobs that failed together.
	Jitter float64
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0.2
	}
	return p
}

// Delay returns the backoff before retry number retry (1 = the sleep
// between the first failure and the second attempt), jitter included.
func (p Policy) Delay(retry int) time.Duration {
	p = p.withDefaults()
	d := float64(p.BaseDelay)
	for i := 1; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		d *= 1 + p.Jitter*rand.Float64()
	}
	return time.Duration(d)
}

// Transienter marks an error as worth retrying. internal/faultinject's
// injected errors implement it, as does the Transient wrapper here.
type Transienter interface{ Transient() bool }

type transientErr struct{ err error }

func (e *transientErr) Error() string   { return e.err.Error() }
func (e *transientErr) Unwrap() error   { return e.err }
func (e *transientErr) Transient() bool { return true }

// Transient wraps err so IsTransient reports true for it (nil stays nil).
// I/O layers use it to mark failures that a fresh attempt can outlive.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient reports whether err is retryable: some error in its chain
// implements Transienter with Transient() == true. Context cancellation
// and deadline errors are never transient, whatever the chain says — the
// caller has given up or run out of time.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t Transienter
	return errors.As(err, &t) && t.Transient()
}

// Do runs op up to p.MaxAttempts times, sleeping the policy's backoff
// between attempts. It stops — returning op's error — as soon as op
// succeeds, fails non-transiently, or ctx ends (sleeps are interrupted).
// The returned error is op's own error, not a wrapper, so errors.Is
// classification at the service boundary keeps working.
func Do(ctx context.Context, p Policy, op func(ctx context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	p = p.withDefaults()
	var err error
	for attempt := 1; ; attempt++ {
		err = op(ctx)
		if err == nil || !IsTransient(err) || attempt >= p.MaxAttempts {
			return err
		}
		t := time.NewTimer(p.Delay(attempt))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
}

// StatusError is the non-2xx terminal result of PostJSON: the final
// response's status and body, after retries are exhausted or for a
// non-retryable status.
type StatusError struct {
	StatusCode int
	Body       string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("http %d: %s", e.StatusCode, e.Body)
}

// retryableStatus reports the statuses a client may safely retry: the
// service's admission-control and drain rejections plus gateway-class
// errors. The zkphired API's POSTs are idempotent (registration by
// content hash; proving by idempotency key), so retrying is safe.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// PostJSON posts in as JSON to url and decodes the 2xx response into out
// (out may be nil to discard). Transport errors and retryable statuses
// (429, 502, 503, 504) are retried under p; when the response carries a
// Retry-After header with a second count, that delay is used instead of
// the backoff (still capped by p.MaxDelay). A nil client uses
// http.DefaultClient.
func PostJSON(ctx context.Context, client *http.Client, url string, in, out any, p Policy) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("retry: marshal request: %w", err)
	}
	return doJSON(ctx, client, http.MethodPost, url, body, out, p)
}

// GetJSON fetches url and decodes the 2xx JSON response into out (out may
// be nil to discard), with the same retry/Retry-After discipline as
// PostJSON. The cluster worker agent uses it to replicate circuit specs
// from the coordinator by content hash — a safe retry because GETs of
// content-addressed state are idempotent by construction.
func GetJSON(ctx context.Context, client *http.Client, url string, out any, p Policy) error {
	return doJSON(ctx, client, http.MethodGet, url, nil, out, p)
}

// doJSON is the shared retry loop behind PostJSON and GetJSON.
func doJSON(ctx context.Context, client *http.Client, method, url string, body []byte, out any, p Policy) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if client == nil {
		client = http.DefaultClient
	}
	p = p.withDefaults()

	var last error
	for attempt := 1; ; attempt++ {
		status, retryAfter, raw, err := doOnce(ctx, client, method, url, body)
		switch {
		case err != nil:
			last = Transient(err)
		case status/100 == 2:
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(raw, out); err != nil {
				return fmt.Errorf("retry: decode response: %w", err)
			}
			return nil
		default:
			last = &StatusError{StatusCode: status, Body: string(raw)}
			if !retryableStatus(status) {
				return last
			}
		}
		if attempt >= p.MaxAttempts || ctx.Err() != nil {
			return last
		}
		delay := p.Delay(attempt)
		if retryAfter > 0 {
			delay = retryAfter
			if delay > p.MaxDelay {
				delay = p.MaxDelay
			}
		}
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return last
		}
	}
}

// doOnce performs one request, returning the status, any Retry-After
// delay, and the response body. A nil body sends no payload (GET).
func doOnce(ctx context.Context, client *http.Client, method, url string, body []byte) (status int, retryAfter time.Duration, raw []byte, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, nil, err
	}
	defer resp.Body.Close()
	raw, err = io.ReadAll(resp.Body)
	if err != nil {
		return 0, 0, nil, err
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, perr := strconv.Atoi(s); perr == nil && secs >= 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, retryAfter, raw, nil
}
