package retry

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"zkphire/internal/faultinject"
)

func TestDelayGrowsAndCaps(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Multiplier: 2, Jitter: 0}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestJitterStaysInBand(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: 0.5}
	for i := 0; i < 64; i++ {
		d := p.Delay(1)
		if d < 100*time.Millisecond || d >= 150*time.Millisecond {
			t.Fatalf("jittered delay %v outside [100ms, 150ms)", d)
		}
	}
}

func TestIsTransient(t *testing.T) {
	if IsTransient(nil) {
		t.Error("nil is transient")
	}
	if IsTransient(errors.New("plain")) {
		t.Error("plain error is transient")
	}
	if !IsTransient(Transient(errors.New("io wobble"))) {
		t.Error("marked error is not transient")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", Transient(errors.New("x")))) {
		t.Error("wrapping hides the transient mark")
	}
	if IsTransient(context.Canceled) || IsTransient(fmt.Errorf("op: %w", context.DeadlineExceeded)) {
		t.Error("context errors must never be transient")
	}
	// Injected faults classify as transient without a retry import in
	// faultinject: the Transienter interface is the contract.
	faultinject.Reset()
	faultinject.Arm("t", faultinject.Fault{Mode: faultinject.ModeError})
	defer faultinject.Reset()
	if !IsTransient(faultinject.Hit("t")) {
		t.Error("injected fault is not transient")
	}
}

func TestDoRetriesTransientOnly(t *testing.T) {
	fast := Policy{MaxAttempts: 4, BaseDelay: time.Microsecond, Jitter: 0}

	calls := 0
	err := Do(context.Background(), fast, func(context.Context) error {
		calls++
		if calls < 3 {
			return Transient(errors.New("wobble"))
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("transient retry: err=%v calls=%d, want nil/3", err, calls)
	}

	calls = 0
	permanent := errors.New("permanent")
	if err := Do(context.Background(), fast, func(context.Context) error { calls++; return permanent }); !errors.Is(err, permanent) || calls != 1 {
		t.Fatalf("permanent error retried: err=%v calls=%d", err, calls)
	}

	calls = 0
	wobble := Transient(errors.New("always"))
	if err := Do(context.Background(), fast, func(context.Context) error { calls++; return wobble }); !errors.Is(err, wobble) || calls != 4 {
		t.Fatalf("exhaustion: err=%v calls=%d, want wobble/4", err, calls)
	}
}

func TestDoStopsOnContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Do(ctx, Policy{MaxAttempts: 10, BaseDelay: time.Hour, Jitter: 0}, func(context.Context) error {
		calls++
		cancel()
		return Transient(errors.New("wobble"))
	})
	if !errors.Is(err, context.Canceled) || calls != 1 {
		t.Fatalf("ctx cancel mid-backoff: err=%v calls=%d", err, calls)
	}
}

func TestPostJSONRetriesWithRetryAfter(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"saturated"}`)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer srv.Close()

	var out struct {
		OK bool `json:"ok"`
	}
	p := Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, Jitter: 0}
	if err := PostJSON(context.Background(), srv.Client(), srv.URL, map[string]int{"x": 1}, &out, p); err != nil {
		t.Fatal(err)
	}
	if !out.OK || hits.Load() != 3 {
		t.Fatalf("ok=%v hits=%d, want true/3", out.OK, hits.Load())
	}
}

func TestPostJSONDoesNotRetryClientErrors(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "bad request", http.StatusBadRequest)
	}))
	defer srv.Close()

	err := PostJSON(context.Background(), srv.Client(), srv.URL, map[string]int{}, nil,
		Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, Jitter: 0})
	var se *StatusError
	if !errors.As(err, &se) || se.StatusCode != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("400 retried %d times", hits.Load())
	}
}

func TestPostJSONExhaustionReturnsLastStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	err := PostJSON(context.Background(), srv.Client(), srv.URL, map[string]int{}, nil,
		Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, Jitter: 0})
	var se *StatusError
	if !errors.As(err, &se) || se.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want StatusError 503", err)
	}
}

func TestGetJSONRetriesAndSendsNoBody(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			t.Errorf("method = %s, want GET", r.Method)
		}
		if r.ContentLength != 0 {
			t.Errorf("GET carried a %d-byte body", r.ContentLength)
		}
		if ct := r.Header.Get("Content-Type"); ct != "" {
			t.Errorf("GET carried Content-Type %q", ct)
		}
		if hits.Add(1) < 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"spec":"abc"}`)
	}))
	defer srv.Close()

	var out struct {
		Spec string `json:"spec"`
	}
	p := Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: 0}
	if err := GetJSON(context.Background(), srv.Client(), srv.URL, &out, p); err != nil {
		t.Fatal(err)
	}
	if out.Spec != "abc" || hits.Load() != 2 {
		t.Fatalf("spec=%q hits=%d, want abc/2", out.Spec, hits.Load())
	}
}
