// Package membench measures process memory around a function call — the
// gauge behind cmd/benchjson's peak_rss_bytes column and the PR 8
// memory-regression harness.
//
// Two gauges, because containers differ:
//
//   - PeakRSSBytes reads VmHWM from /proc/self/status: the kernel's own
//     lifetime high-water mark. It is monotone for the process, so it can
//     bound a whole run but cannot isolate one call.
//   - Sample brackets one function call: it shrinks the heap to a baseline
//     (runtime.GC + debug.FreeOSMemory), then polls VmRSS from a background
//     goroutine while f runs and reports the peak it saw. This works even
//     where VmHWM is absent (some container /proc filesystems omit it) and
//     where resetting the high-water mark via /proc/self/clear_refs is not
//     permitted.
//
// The sampler is a polling gauge: a sub-millisecond allocation spike can
// land between samples, so treat Sample's peak as a floor with roughly one
// poll interval of blur, and leave slack in assertions built on it.
package membench

import (
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"
)

// Result is one bracketed measurement.
type Result struct {
	// BaselineBytes is the resident set right before f started, after the
	// heap was shrunk (GC + FreeOSMemory).
	BaselineBytes int64
	// PeakBytes is the largest resident set sampled while f ran.
	PeakBytes int64
}

// DeltaBytes is the peak growth over the baseline — the call's own
// footprint, clamped at zero.
func (r Result) DeltaBytes() int64 {
	d := r.PeakBytes - r.BaselineBytes
	if d < 0 {
		return 0
	}
	return d
}

// pollInterval is the sampler's cadence: fine enough to catch the prover's
// table-allocation plateaus (tens of milliseconds each at regression-test
// sizes), coarse enough to cost nothing.
const pollInterval = time.Millisecond

// Sample shrinks the heap, runs f, and reports the baseline and peak
// resident set. The gauge prefers VmRSS (what the kernel — and a container
// memory limit — actually charges) and falls back to the Go runtime's
// in-use accounting where procfs is unavailable.
func Sample(f func()) Result {
	runtime.GC()
	debug.FreeOSMemory()
	base := CurrentRSSBytes()
	peak := base
	done := make(chan struct{})
	quiet := make(chan struct{})
	//zkvet:ignore norawgo background RSS poller bracketing exactly one call; joined via the quiet channel before Sample returns
	go func() {
		defer close(quiet)
		ticker := time.NewTicker(pollInterval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if r := CurrentRSSBytes(); r > peak {
					peak = r
				}
			}
		}
	}()
	f()
	close(done)
	<-quiet
	if r := CurrentRSSBytes(); r > peak {
		peak = r
	}
	return Result{BaselineBytes: base, PeakBytes: peak}
}

// SampleUnderLimit is Sample with the Go runtime's soft memory limit set to
// limit for the duration of f (and restored afterwards). The limit makes
// the GC actually return freed pages promptly, so VmRSS tracks the live set
// instead of the allocator's high-water mark — this is what turns the
// streamed prover's bounded live set into a bounded resident set.
func SampleUnderLimit(limit int64, f func()) Result {
	old := debug.SetMemoryLimit(limit)
	defer debug.SetMemoryLimit(old)
	return Sample(f)
}

// PeakRSSBytes returns the process's lifetime high-water resident set. On
// Linux it reads VmHWM from /proc/self/status (the kernel's own gauge,
// counting every page the process ever had resident — SRS points and arena
// scratch included). Elsewhere, or if procfs omits the field, it falls back
// to runtime.ReadMemStats' Sys: the Go runtime's total OS reservation, an
// upper-bound proxy that misses nothing the runtime manages.
func PeakRSSBytes() int64 {
	if v, ok := statusBytes("VmHWM:"); ok {
		return v
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}

// CurrentRSSBytes returns the process's current resident set (VmRSS). Off
// Linux it approximates with the runtime's OS reservation minus what has
// been returned (Sys − HeapReleased).
func CurrentRSSBytes() int64 {
	if v, ok := statusBytes("VmRSS:"); ok {
		return v
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys - ms.HeapReleased)
}

// statusBytes extracts a kB-denominated field from /proc/self/status.
func statusBytes(prefix string) (int64, bool) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
				return kb << 10, true
			}
		}
	}
	return 0, false
}
