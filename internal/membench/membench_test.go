package membench

import (
	"runtime"
	"runtime/debug"
	"testing"
	"time"
)

// TestSampleCatchesAllocation allocates a slab much larger than any plausible
// sampler jitter and holds it past several poll intervals; the bracketed
// sample must report a delta of at least most of the slab.
func TestSampleCatchesAllocation(t *testing.T) {
	const slab = 64 << 20
	var sink []byte
	r := Sample(func() {
		sink = make([]byte, slab)
		// Touch every page so the kernel actually maps it into RSS.
		for i := 0; i < len(sink); i += 4096 {
			sink[i] = 1
		}
		time.Sleep(20 * pollInterval)
	})
	runtime.KeepAlive(sink)
	if r.PeakBytes <= r.BaselineBytes {
		t.Fatalf("peak %d not above baseline %d", r.PeakBytes, r.BaselineBytes)
	}
	if d := r.DeltaBytes(); d < slab/2 {
		t.Fatalf("sampled delta %d MiB missed the %d MiB slab", d>>20, int64(slab)>>20)
	}
}

// TestSampleMonotoneFields checks the basic shape invariants: non-negative
// baseline, peak ≥ baseline is not guaranteed by the kernel (pages can be
// reclaimed between the baseline read and the first poll), but DeltaBytes
// must clamp at zero.
func TestSampleDeltaClamps(t *testing.T) {
	r := Result{BaselineBytes: 100, PeakBytes: 40}
	if d := r.DeltaBytes(); d != 0 {
		t.Fatalf("negative delta not clamped: %d", d)
	}
}

// TestSampleUnderLimitRestores confirms the soft memory limit is restored
// after the bracketed call, including the default "unlimited" value.
func TestSampleUnderLimitRestores(t *testing.T) {
	before := debug.SetMemoryLimit(-1) // read without changing
	SampleUnderLimit(1<<30, func() {
		if got := debug.SetMemoryLimit(-1); got != 1<<30 {
			t.Errorf("limit inside bracket = %d, want %d", got, int64(1<<30))
		}
	})
	if after := debug.SetMemoryLimit(-1); after != before {
		t.Fatalf("memory limit not restored: %d, want %d", after, before)
	}
}

// TestGaugesReturnSomething: both gauges must produce positive values on any
// supported platform (procfs or the runtime fallback).
func TestGaugesReturnSomething(t *testing.T) {
	if v := CurrentRSSBytes(); v <= 0 {
		t.Fatalf("CurrentRSSBytes = %d", v)
	}
	if v := PeakRSSBytes(); v <= 0 {
		t.Fatalf("PeakRSSBytes = %d", v)
	}
}
