// Package fp implements arithmetic over the BLS12-381 base field Fp, the
// 381-bit prime field with modulus
//
//	p = 0x1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f624
//	    1eabfffeb153ffffb9feffffffffaaab
//
// Elements are stored in Montgomery form as six little-endian 64-bit limbs.
// Curve point coordinates (internal/curve) live in this field; all MLE data
// lives in the 255-bit scalar field (internal/ff).
package fp

import (
	"fmt"
	"io"
	"math/big"
	"math/bits"
)

// Limbs is the number of 64-bit limbs in an Element.
const Limbs = 6

// Bytes is the byte size of a canonical serialized element.
const Bytes = 48

// Element is a base-field element in Montgomery form (a*R mod p, R = 2^384).
type Element [Limbs]uint64

const modulusHex = "1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab"

var (
	p       Element
	pBig    *big.Int
	pInvNeg uint64
	rSquare Element
	one     Element
	zero    Element
)

func init() {
	pBig, _ = new(big.Int).SetString(modulusHex, 16)
	bigToLimbs(pBig, (*[Limbs]uint64)(&p))

	inv := uint64(1)
	for i := 0; i < 6; i++ {
		inv *= 2 - p[0]*inv
	}
	pInvNeg = -inv

	r := new(big.Int).Lsh(big.NewInt(1), 384)
	r.Mod(r, pBig)
	bigToLimbs(r, (*[Limbs]uint64)(&one))

	r2 := new(big.Int).Lsh(big.NewInt(1), 768)
	r2.Mod(r2, pBig)
	bigToLimbs(r2, (*[Limbs]uint64)(&rSquare))
}

// Modulus returns a copy of the base-field modulus.
func Modulus() *big.Int { return new(big.Int).Set(pBig) }

func bigToLimbs(v *big.Int, out *[Limbs]uint64) {
	var tmp big.Int
	tmp.Set(v)
	mask := new(big.Int).SetUint64(^uint64(0))
	for i := 0; i < Limbs; i++ {
		var lo big.Int
		lo.And(&tmp, mask)
		out[i] = lo.Uint64()
		tmp.Rsh(&tmp, 64)
	}
}

func limbsToBig(e *Element, out *big.Int) {
	var buf [Bytes]byte
	for i := 0; i < Limbs; i++ {
		for j := 0; j < 8; j++ {
			buf[Bytes-1-(8*i+j)] = byte(e[i] >> (8 * j))
		}
	}
	out.SetBytes(buf[:])
}

// One returns the multiplicative identity.
func One() Element { return one }

// Zero returns the additive identity.
func Zero() Element { return zero }

// SetZero sets z to 0 and returns z.
func (z *Element) SetZero() *Element { *z = zero; return z }

// SetOne sets z to 1 and returns z.
func (z *Element) SetOne() *Element { *z = one; return z }

// Set sets z to x and returns z.
func (z *Element) Set(x *Element) *Element { *z = *x; return z }

// SetUint64 sets z to v and returns z.
func (z *Element) SetUint64(v uint64) *Element {
	*z = Element{v}
	return z.Mul(z, &rSquare)
}

// SetBigInt sets z to v mod p and returns z.
func (z *Element) SetBigInt(v *big.Int) *Element {
	var t big.Int
	t.Mod(v, pBig)
	var plain Element
	bigToLimbs(&t, (*[Limbs]uint64)(&plain))
	return z.Mul(&plain, &rSquare)
}

// SetHex sets z from a hex string (no 0x prefix required) and returns z.
func (z *Element) SetHex(s string) *Element {
	v, ok := new(big.Int).SetString(s, 16)
	if !ok {
		panic(fmt.Sprintf("fp: bad hex %q", s))
	}
	return z.SetBigInt(v)
}

// BigInt writes the canonical value of z into out and returns out.
func (z *Element) BigInt(out *big.Int) *big.Int {
	plain := z.fromMont()
	limbsToBig(&plain, out)
	return out
}

func (z *Element) fromMont() Element {
	var res Element
	unit := Element{1}
	res.Mul(z, &unit)
	return res
}

// Bytes returns the canonical big-endian 48-byte encoding.
func (z *Element) Bytes() [Bytes]byte {
	plain := z.fromMont()
	var buf [Bytes]byte
	for i := 0; i < Limbs; i++ {
		for j := 0; j < 8; j++ {
			buf[Bytes-1-(8*i+j)] = byte(plain[i] >> (8 * j))
		}
	}
	return buf
}

// SetBytes sets z from big-endian bytes (reduced mod p) and returns z.
func (z *Element) SetBytes(b []byte) *Element {
	var v big.Int
	v.SetBytes(b)
	return z.SetBigInt(&v)
}

// SetRandom sets z to a uniform element from rng and returns z.
func (z *Element) SetRandom(rng io.Reader) (*Element, error) {
	var buf [64]byte
	if _, err := io.ReadFull(rng, buf[:]); err != nil {
		return nil, err
	}
	var v big.Int
	v.SetBytes(buf[:])
	return z.SetBigInt(&v), nil
}

// IsZero reports whether z == 0.
func (z *Element) IsZero() bool {
	return z[0]|z[1]|z[2]|z[3]|z[4]|z[5] == 0
}

// IsOne reports whether z == 1.
func (z *Element) IsOne() bool { return *z == one }

// Equal reports whether z == x.
func (z *Element) Equal(x *Element) bool { return *z == *x }

func smallerThanModulus(z *Element) bool {
	for i := Limbs - 1; i >= 0; i-- {
		if z[i] < p[i] {
			return true
		}
		if z[i] > p[i] {
			return false
		}
	}
	return false
}

// Add sets z = x + y mod p and returns z.
func (z *Element) Add(x, y *Element) *Element {
	var t Element
	var carry uint64
	for i := 0; i < Limbs; i++ {
		t[i], carry = bits.Add64(x[i], y[i], carry)
	}
	// p has 381 bits, so 2p < 2^384 and carry is always 0 for reduced inputs.
	if !smallerThanModulus(&t) {
		var b uint64
		for i := 0; i < Limbs; i++ {
			t[i], b = bits.Sub64(t[i], p[i], b)
		}
	}
	*z = t
	return z
}

// Double sets z = 2x and returns z.
func (z *Element) Double(x *Element) *Element { return z.Add(x, x) }

// Sub sets z = x - y mod p and returns z.
func (z *Element) Sub(x, y *Element) *Element {
	var t Element
	var borrow uint64
	for i := 0; i < Limbs; i++ {
		t[i], borrow = bits.Sub64(x[i], y[i], borrow)
	}
	if borrow != 0 {
		var c uint64
		for i := 0; i < Limbs; i++ {
			t[i], c = bits.Add64(t[i], p[i], c)
		}
	}
	*z = t
	return z
}

// Neg sets z = -x mod p and returns z.
func (z *Element) Neg(x *Element) *Element {
	if x.IsZero() {
		return z.SetZero()
	}
	var t Element
	var borrow uint64
	for i := 0; i < Limbs; i++ {
		t[i], borrow = bits.Sub64(p[i], x[i], borrow)
	}
	_ = borrow
	*z = t
	return z
}

func madd(a, b, c, d uint64) (hi, lo uint64) {
	hi, lo = bits.Mul64(a, b)
	var carry uint64
	lo, carry = bits.Add64(lo, c, 0)
	hi += carry
	lo, carry = bits.Add64(lo, d, 0)
	hi += carry
	return hi, lo
}

// madd0 returns the high word of a*b + c (the low word is discarded — in
// the fused CIOS round below it is zero by construction of m).
func madd0(a, b, c uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, carry := bits.Add64(lo, c, 0)
	return hi + carry
}

// Mul sets z = x*y mod p (Montgomery CIOS, fused "no-carry" variant) and
// returns z. Because the top limb of p is < 2^62, the intermediate
// accumulator never overflows the Limbs+1st word, so the multiplication and
// Montgomery reduction interleave in a single unrolled pass with the
// accumulator in scalar locals (registers). This is the prover's single
// hottest instruction sequence — every curve-point operation in an MSM runs
// through it.
func (z *Element) Mul(x, y *Element) *Element {
	var t0, t1, t2, t3, t4, t5 uint64
	x0, x1, x2, x3, x4, x5 := x[0], x[1], x[2], x[3], x[4], x[5]
	p0, p1, p2, p3, p4, p5 := p[0], p[1], p[2], p[3], p[4], p[5]

	for i := 0; i < Limbs; i++ {
		yi := y[i]
		var A, C uint64
		A, t0 = madd(x0, yi, t0, 0)
		m := t0 * pInvNeg
		C = madd0(m, p0, t0)
		A, t1 = madd(x1, yi, t1, A)
		C, t0 = madd(m, p1, t1, C)
		A, t2 = madd(x2, yi, t2, A)
		C, t1 = madd(m, p2, t2, C)
		A, t3 = madd(x3, yi, t3, A)
		C, t2 = madd(m, p3, t3, C)
		A, t4 = madd(x4, yi, t4, A)
		C, t3 = madd(m, p4, t4, C)
		A, t5 = madd(x5, yi, t5, A)
		C, t4 = madd(m, p5, t5, C)
		t5 = C + A
	}

	r := Element{t0, t1, t2, t3, t4, t5}
	if !smallerThanModulus(&r) {
		var b uint64
		r[0], b = bits.Sub64(r[0], p0, b)
		r[1], b = bits.Sub64(r[1], p1, b)
		r[2], b = bits.Sub64(r[2], p2, b)
		r[3], b = bits.Sub64(r[3], p3, b)
		r[4], b = bits.Sub64(r[4], p4, b)
		r[5], b = bits.Sub64(r[5], p5, b)
	}
	*z = r
	return z
}

// Square sets z = x² and returns z.
func (z *Element) Square(x *Element) *Element { return z.Mul(x, x) }

var pMinus2 *big.Int

func init() {
	pm, _ := new(big.Int).SetString(modulusHex, 16)
	pMinus2 = pm.Sub(pm, big.NewInt(2))
}

// Exp sets z = x^e and returns z.
func (z *Element) Exp(x *Element, e *big.Int) *Element {
	if e.Sign() == 0 {
		return z.SetOne()
	}
	base := *x
	res := one
	for i := e.BitLen() - 1; i >= 0; i-- {
		res.Square(&res)
		if e.Bit(i) == 1 {
			res.Mul(&res, &base)
		}
	}
	*z = res
	return z
}

// Inverse sets z = 1/x (0 for x = 0) and returns z.
func (z *Element) Inverse(x *Element) *Element {
	if x.IsZero() {
		return z.SetZero()
	}
	return z.Exp(x, pMinus2)
}

// String returns the decimal representation.
func (z *Element) String() string {
	var v big.Int
	z.BigInt(&v)
	return v.String()
}
