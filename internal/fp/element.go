// Package fp implements arithmetic over the BLS12-381 base field Fp, the
// 381-bit prime field with modulus
//
//	p = 0x1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f624
//	    1eabfffeb153ffffb9feffffffffaaab
//
// Elements are stored in Montgomery form as six little-endian 64-bit limbs.
// Curve point coordinates (internal/curve) live in this field; all MLE data
// lives in the 255-bit scalar field (internal/ff).
package fp

import (
	"fmt"
	"io"
	"math/big"
	"math/bits"
)

// Limbs is the number of 64-bit limbs in an Element.
const Limbs = 6

// Bytes is the byte size of a canonical serialized element.
const Bytes = 48

// Element is a base-field element in Montgomery form (a*R mod p, R = 2^384).
type Element [Limbs]uint64

const modulusHex = "1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab"

// Modulus limbs and the Montgomery constant as untyped constants so the
// unrolled Mul below can fold them into immediates instead of burning six
// registers; init cross-checks them against modulusHex (the single trusted
// literal) and panics on mismatch.
const (
	pc0 = 0xb9feffffffffaaab
	pc1 = 0x1eabfffeb153ffff
	pc2 = 0x6730d2a0f6b0f624
	pc3 = 0x64774b84f38512bf
	pc4 = 0x4b1ba7b6434bacd7
	pc5 = 0x1a0111ea397fe69a
	// pInvNegC = -p^{-1} mod 2^64.
	pInvNegC = 0x89f3fffcfffcfffd
)

var (
	p       Element
	pBig    *big.Int
	pInvNeg uint64
	rSquare Element
	one     Element
	zero    Element
)

func init() {
	pBig, _ = new(big.Int).SetString(modulusHex, 16)
	bigToLimbs(pBig, (*[Limbs]uint64)(&p))

	inv := uint64(1)
	for i := 0; i < 6; i++ {
		inv *= 2 - p[0]*inv
	}
	pInvNeg = -inv

	if p != (Element{pc0, pc1, pc2, pc3, pc4, pc5}) || pInvNeg != pInvNegC {
		panic("fp: unrolled-Mul constants disagree with the modulus")
	}

	r := new(big.Int).Lsh(big.NewInt(1), 384)
	r.Mod(r, pBig)
	bigToLimbs(r, (*[Limbs]uint64)(&one))

	r2 := new(big.Int).Lsh(big.NewInt(1), 768)
	r2.Mod(r2, pBig)
	bigToLimbs(r2, (*[Limbs]uint64)(&rSquare))
}

// Modulus returns a copy of the base-field modulus.
func Modulus() *big.Int { return new(big.Int).Set(pBig) }

// thirdRootOne is a primitive cube root of unity in Fp, derived at init.
var thirdRootOne Element

func init() {
	// p ≡ 1 (mod 3) for BLS12-381, so x^((p−1)/3) is a cube root of unity;
	// scan small bases until the root is nontrivial.
	exp := new(big.Int).Sub(pBig, big.NewInt(1))
	if new(big.Int).Mod(exp, big.NewInt(3)).Sign() != 0 {
		panic("fp: p−1 not divisible by 3; no cube root of unity")
	}
	exp.Div(exp, big.NewInt(3))
	for g := int64(2); ; g++ {
		w := new(big.Int).Exp(big.NewInt(g), exp, pBig)
		if w.Cmp(big.NewInt(1)) != 0 {
			thirdRootOne.SetBigInt(w)
			break
		}
	}
	var check Element
	check.Square(&thirdRootOne)
	check.Mul(&check, &thirdRootOne)
	if !check.IsOne() || thirdRootOne.IsOne() {
		panic("fp: derived cube root of unity is invalid")
	}
}

// ThirdRootOne returns β, a primitive cube root of unity in Fp (β³ = 1,
// β ≠ 1). The GLV endomorphism φ(x, y) = (βx, y) on BLS12-381 G1 is built
// from it — the curve layer picks β or β² so that φ matches the scalar
// eigenvalue λ.
func ThirdRootOne() Element { return thirdRootOne }

func bigToLimbs(v *big.Int, out *[Limbs]uint64) {
	var tmp big.Int
	tmp.Set(v)
	mask := new(big.Int).SetUint64(^uint64(0))
	for i := 0; i < Limbs; i++ {
		var lo big.Int
		lo.And(&tmp, mask)
		out[i] = lo.Uint64()
		tmp.Rsh(&tmp, 64)
	}
}

func limbsToBig(e *Element, out *big.Int) {
	var buf [Bytes]byte
	for i := 0; i < Limbs; i++ {
		for j := 0; j < 8; j++ {
			buf[Bytes-1-(8*i+j)] = byte(e[i] >> (8 * j))
		}
	}
	out.SetBytes(buf[:])
}

// One returns the multiplicative identity.
func One() Element { return one }

// Zero returns the additive identity.
func Zero() Element { return zero }

// SetZero sets z to 0 and returns z.
func (z *Element) SetZero() *Element { *z = zero; return z }

// SetOne sets z to 1 and returns z.
func (z *Element) SetOne() *Element { *z = one; return z }

// Set sets z to x and returns z.
func (z *Element) Set(x *Element) *Element { *z = *x; return z }

// SetUint64 sets z to v and returns z.
func (z *Element) SetUint64(v uint64) *Element {
	*z = Element{v}
	return z.Mul(z, &rSquare)
}

// SetBigInt sets z to v mod p and returns z.
func (z *Element) SetBigInt(v *big.Int) *Element {
	var t big.Int
	t.Mod(v, pBig)
	var plain Element
	bigToLimbs(&t, (*[Limbs]uint64)(&plain))
	return z.Mul(&plain, &rSquare)
}

// SetHex sets z from a hex string (no 0x prefix required) and returns z.
func (z *Element) SetHex(s string) *Element {
	v, ok := new(big.Int).SetString(s, 16)
	if !ok {
		panic(fmt.Sprintf("fp: bad hex %q", s))
	}
	return z.SetBigInt(v)
}

// BigInt writes the canonical value of z into out and returns out.
func (z *Element) BigInt(out *big.Int) *big.Int {
	plain := z.fromMont()
	limbsToBig(&plain, out)
	return out
}

func (z *Element) fromMont() Element {
	var res Element
	unit := Element{1}
	res.Mul(z, &unit)
	return res
}

// Bytes returns the canonical big-endian 48-byte encoding.
func (z *Element) Bytes() [Bytes]byte {
	plain := z.fromMont()
	var buf [Bytes]byte
	for i := 0; i < Limbs; i++ {
		for j := 0; j < 8; j++ {
			buf[Bytes-1-(8*i+j)] = byte(plain[i] >> (8 * j))
		}
	}
	return buf
}

// SetBytes sets z from big-endian bytes (reduced mod p) and returns z.
func (z *Element) SetBytes(b []byte) *Element {
	var v big.Int
	v.SetBytes(b)
	return z.SetBigInt(&v)
}

// SetRandom sets z to a uniform element from rng and returns z.
func (z *Element) SetRandom(rng io.Reader) (*Element, error) {
	var buf [64]byte
	if _, err := io.ReadFull(rng, buf[:]); err != nil {
		return nil, err
	}
	var v big.Int
	v.SetBytes(buf[:])
	return z.SetBigInt(&v), nil
}

// IsZero reports whether z == 0.
func (z *Element) IsZero() bool {
	return z[0]|z[1]|z[2]|z[3]|z[4]|z[5] == 0
}

// IsOne reports whether z == 1.
func (z *Element) IsOne() bool { return *z == one }

// Equal reports whether z == x. The limb-wise chain (rather than array ==)
// lets the comparison inline and exit on the first differing limb — in the
// MSM bucket loop virtually every call fails at limb 0.
func (z *Element) Equal(x *Element) bool {
	return z[0] == x[0] && z[1] == x[1] && z[2] == x[2] &&
		z[3] == x[3] && z[4] == x[4] && z[5] == x[5]
}

func smallerThanModulus(z *Element) bool {
	for i := Limbs - 1; i >= 0; i-- {
		if z[i] < p[i] {
			return true
		}
		if z[i] > p[i] {
			return false
		}
	}
	return false
}

// Add sets z = x + y mod p and returns z. The body is unrolled with the
// modulus limbs as immediates — the MSM bucket loop calls this (via Sub/Neg
// too) several times per point addition.
func (z *Element) Add(x, y *Element) *Element {
	var t0, t1, t2, t3, t4, t5, carry uint64
	t0, carry = bits.Add64(x[0], y[0], 0)
	t1, carry = bits.Add64(x[1], y[1], carry)
	t2, carry = bits.Add64(x[2], y[2], carry)
	t3, carry = bits.Add64(x[3], y[3], carry)
	t4, carry = bits.Add64(x[4], y[4], carry)
	t5, _ = bits.Add64(x[5], y[5], carry)
	// p has 381 bits, so 2p < 2^384 and the carry out is always 0 for
	// reduced inputs; reduce by a branch-free conditional subtraction.
	var b uint64
	var s0, s1, s2, s3, s4, s5 uint64
	s0, b = bits.Sub64(t0, pc0, 0)
	s1, b = bits.Sub64(t1, pc1, b)
	s2, b = bits.Sub64(t2, pc2, b)
	s3, b = bits.Sub64(t3, pc3, b)
	s4, b = bits.Sub64(t4, pc4, b)
	s5, b = bits.Sub64(t5, pc5, b)
	if b == 0 { // t >= p
		z[0], z[1], z[2], z[3], z[4], z[5] = s0, s1, s2, s3, s4, s5
	} else {
		z[0], z[1], z[2], z[3], z[4], z[5] = t0, t1, t2, t3, t4, t5
	}
	return z
}

// Double sets z = 2x and returns z.
func (z *Element) Double(x *Element) *Element { return z.Add(x, x) }

// Sub sets z = x - y mod p and returns z.
func (z *Element) Sub(x, y *Element) *Element {
	var t0, t1, t2, t3, t4, t5, borrow uint64
	t0, borrow = bits.Sub64(x[0], y[0], 0)
	t1, borrow = bits.Sub64(x[1], y[1], borrow)
	t2, borrow = bits.Sub64(x[2], y[2], borrow)
	t3, borrow = bits.Sub64(x[3], y[3], borrow)
	t4, borrow = bits.Sub64(x[4], y[4], borrow)
	t5, borrow = bits.Sub64(x[5], y[5], borrow)
	if borrow != 0 {
		var c uint64
		t0, c = bits.Add64(t0, pc0, 0)
		t1, c = bits.Add64(t1, pc1, c)
		t2, c = bits.Add64(t2, pc2, c)
		t3, c = bits.Add64(t3, pc3, c)
		t4, c = bits.Add64(t4, pc4, c)
		t5, _ = bits.Add64(t5, pc5, c)
	}
	z[0], z[1], z[2], z[3], z[4], z[5] = t0, t1, t2, t3, t4, t5
	return z
}

// Neg sets z = -x mod p and returns z.
func (z *Element) Neg(x *Element) *Element {
	if x.IsZero() {
		return z.SetZero()
	}
	var t0, t1, t2, t3, t4, t5, borrow uint64
	t0, borrow = bits.Sub64(pc0, x[0], 0)
	t1, borrow = bits.Sub64(pc1, x[1], borrow)
	t2, borrow = bits.Sub64(pc2, x[2], borrow)
	t3, borrow = bits.Sub64(pc3, x[3], borrow)
	t4, borrow = bits.Sub64(pc4, x[4], borrow)
	t5, _ = bits.Sub64(pc5, x[5], borrow)
	z[0], z[1], z[2], z[3], z[4], z[5] = t0, t1, t2, t3, t4, t5
	return z
}

func madd(a, b, c, d uint64) (hi, lo uint64) {
	hi, lo = bits.Mul64(a, b)
	var carry uint64
	lo, carry = bits.Add64(lo, c, 0)
	hi += carry
	lo, carry = bits.Add64(lo, d, 0)
	hi += carry
	return hi, lo
}

// madd0 returns the high word of a*b + c (the low word is discarded — in
// the fused CIOS round below it is zero by construction of m).
func madd0(a, b, c uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, carry := bits.Add64(lo, c, 0)
	return hi + carry
}

// Mul sets z = x*y mod p (Montgomery CIOS, fused "no-carry" variant) and
// returns z. Because the top limb of p is < 2^62, the intermediate
// accumulator never overflows the Limbs+1st word, so the multiplication and
// Montgomery reduction interleave in a single unrolled pass with the
// accumulator in scalar locals (registers). This is the prover's single
// hottest instruction sequence — every curve-point operation in an MSM runs
// through it.
func (z *Element) Mul(x, y *Element) *Element {
	var t0, t1, t2, t3, t4, t5 uint64
	x0, x1, x2, x3, x4, x5 := x[0], x[1], x[2], x[3], x[4], x[5]

	{
		// round 0
		v := y[0]
		var A, C uint64
		A, t0 = bits.Mul64(x0, v)
		m := t0 * pInvNegC
		C = madd0(m, pc0, t0)
		A, t1 = madd(x1, v, 0, A)
		C, t0 = madd(m, pc1, t1, C)
		A, t2 = madd(x2, v, 0, A)
		C, t1 = madd(m, pc2, t2, C)
		A, t3 = madd(x3, v, 0, A)
		C, t2 = madd(m, pc3, t3, C)
		A, t4 = madd(x4, v, 0, A)
		C, t3 = madd(m, pc4, t4, C)
		A, t5 = madd(x5, v, 0, A)
		C, t4 = madd(m, pc5, t5, C)
		t5 = C + A
	}
	{
		// round 1
		v := y[1]
		var A, C uint64
		A, t0 = madd(x0, v, t0, 0)
		m := t0 * pInvNegC
		C = madd0(m, pc0, t0)
		A, t1 = madd(x1, v, t1, A)
		C, t0 = madd(m, pc1, t1, C)
		A, t2 = madd(x2, v, t2, A)
		C, t1 = madd(m, pc2, t2, C)
		A, t3 = madd(x3, v, t3, A)
		C, t2 = madd(m, pc3, t3, C)
		A, t4 = madd(x4, v, t4, A)
		C, t3 = madd(m, pc4, t4, C)
		A, t5 = madd(x5, v, t5, A)
		C, t4 = madd(m, pc5, t5, C)
		t5 = C + A
	}
	{
		// round 2
		v := y[2]
		var A, C uint64
		A, t0 = madd(x0, v, t0, 0)
		m := t0 * pInvNegC
		C = madd0(m, pc0, t0)
		A, t1 = madd(x1, v, t1, A)
		C, t0 = madd(m, pc1, t1, C)
		A, t2 = madd(x2, v, t2, A)
		C, t1 = madd(m, pc2, t2, C)
		A, t3 = madd(x3, v, t3, A)
		C, t2 = madd(m, pc3, t3, C)
		A, t4 = madd(x4, v, t4, A)
		C, t3 = madd(m, pc4, t4, C)
		A, t5 = madd(x5, v, t5, A)
		C, t4 = madd(m, pc5, t5, C)
		t5 = C + A
	}
	{
		// round 3
		v := y[3]
		var A, C uint64
		A, t0 = madd(x0, v, t0, 0)
		m := t0 * pInvNegC
		C = madd0(m, pc0, t0)
		A, t1 = madd(x1, v, t1, A)
		C, t0 = madd(m, pc1, t1, C)
		A, t2 = madd(x2, v, t2, A)
		C, t1 = madd(m, pc2, t2, C)
		A, t3 = madd(x3, v, t3, A)
		C, t2 = madd(m, pc3, t3, C)
		A, t4 = madd(x4, v, t4, A)
		C, t3 = madd(m, pc4, t4, C)
		A, t5 = madd(x5, v, t5, A)
		C, t4 = madd(m, pc5, t5, C)
		t5 = C + A
	}
	{
		// round 4
		v := y[4]
		var A, C uint64
		A, t0 = madd(x0, v, t0, 0)
		m := t0 * pInvNegC
		C = madd0(m, pc0, t0)
		A, t1 = madd(x1, v, t1, A)
		C, t0 = madd(m, pc1, t1, C)
		A, t2 = madd(x2, v, t2, A)
		C, t1 = madd(m, pc2, t2, C)
		A, t3 = madd(x3, v, t3, A)
		C, t2 = madd(m, pc3, t3, C)
		A, t4 = madd(x4, v, t4, A)
		C, t3 = madd(m, pc4, t4, C)
		A, t5 = madd(x5, v, t5, A)
		C, t4 = madd(m, pc5, t5, C)
		t5 = C + A
	}
	{
		// round 5
		v := y[5]
		var A, C uint64
		A, t0 = madd(x0, v, t0, 0)
		m := t0 * pInvNegC
		C = madd0(m, pc0, t0)
		A, t1 = madd(x1, v, t1, A)
		C, t0 = madd(m, pc1, t1, C)
		A, t2 = madd(x2, v, t2, A)
		C, t1 = madd(m, pc2, t2, C)
		A, t3 = madd(x3, v, t3, A)
		C, t2 = madd(m, pc3, t3, C)
		A, t4 = madd(x4, v, t4, A)
		C, t3 = madd(m, pc4, t4, C)
		A, t5 = madd(x5, v, t5, A)
		C, t4 = madd(m, pc5, t5, C)
		t5 = C + A
	}

	// Final conditional subtraction, branch-free: compute r - p and select.
	var b uint64
	var s0, s1, s2, s3, s4, s5 uint64
	s0, b = bits.Sub64(t0, pc0, 0)
	s1, b = bits.Sub64(t1, pc1, b)
	s2, b = bits.Sub64(t2, pc2, b)
	s3, b = bits.Sub64(t3, pc3, b)
	s4, b = bits.Sub64(t4, pc4, b)
	s5, b = bits.Sub64(t5, pc5, b)
	if b == 0 { // t >= p
		z[0], z[1], z[2], z[3], z[4], z[5] = s0, s1, s2, s3, s4, s5
	} else {
		z[0], z[1], z[2], z[3], z[4], z[5] = t0, t1, t2, t3, t4, t5
	}
	return z
}

// Square sets z = x² and returns z. Dedicated SOS squaring: the 12-word
// square needs only 21 word products (15 doubled cross terms + 6 diagonals)
// against Mul's 36, followed by a 6-round Montgomery reduction — ~20% fewer
// single-word multiplies than Mul on the squaring-heavy Jacobian formulas.
func (z *Element) Square(x *Element) *Element {
	x0, x1, x2, x3, x4, x5 := x[0], x[1], x[2], x[3], x[4], x[5]

	// Upper-triangle products Σ_{i<j} x_i·x_j·2^{64(i+j)} in w[1..10].
	var w [12]uint64
	var hi, lo, c uint64

	// row i=0: x0·x1..x0·x5 → w[1..6]
	hi, w[1] = bits.Mul64(x0, x1)
	hi, lo = madd(x0, x2, hi, 0)
	w[2] = lo
	hi, lo = madd(x0, x3, hi, 0)
	w[3] = lo
	hi, lo = madd(x0, x4, hi, 0)
	w[4] = lo
	hi, lo = madd(x0, x5, hi, 0)
	w[5] = lo
	w[6] = hi
	// row i=1: x1·x2..x1·x5 added at w[3..6], carry into w[7]
	hi, lo = bits.Mul64(x1, x2)
	w[3], c = bits.Add64(w[3], lo, 0)
	hi, lo = madd(x1, x3, hi, c)
	w[4], c = bits.Add64(w[4], lo, 0)
	hi, lo = madd(x1, x4, hi, c)
	w[5], c = bits.Add64(w[5], lo, 0)
	hi, lo = madd(x1, x5, hi, c)
	w[6], c = bits.Add64(w[6], lo, 0)
	w[7] = hi + c
	// row i=2: x2·x3..x2·x5 added at w[5..7], carry into w[8]
	hi, lo = bits.Mul64(x2, x3)
	w[5], c = bits.Add64(w[5], lo, 0)
	hi, lo = madd(x2, x4, hi, c)
	w[6], c = bits.Add64(w[6], lo, 0)
	hi, lo = madd(x2, x5, hi, c)
	w[7], c = bits.Add64(w[7], lo, 0)
	w[8] = hi + c
	// row i=3: x3·x4, x3·x5 added at w[7..8], carry into w[9]
	hi, lo = bits.Mul64(x3, x4)
	w[7], c = bits.Add64(w[7], lo, 0)
	hi, lo = madd(x3, x5, hi, c)
	w[8], c = bits.Add64(w[8], lo, 0)
	w[9] = hi + c
	// row i=4: x4·x5 added at w[9..10]
	hi, lo = bits.Mul64(x4, x5)
	w[9], c = bits.Add64(w[9], lo, 0)
	w[10] = hi + c

	// Double the triangle and add the diagonals x_i²·2^{128i}.
	w[11] = w[10] >> 63
	for i := 10; i > 0; i-- {
		w[i] = w[i]<<1 | w[i-1]>>63
	}
	hi, lo = bits.Mul64(x0, x0)
	w[0] = lo
	w[1], c = bits.Add64(w[1], hi, 0)
	hi, lo = bits.Mul64(x1, x1)
	lo, c = bits.Add64(lo, 0, c)
	hi += c
	w[2], c = bits.Add64(w[2], lo, 0)
	w[3], c = bits.Add64(w[3], hi, c)
	hi, lo = bits.Mul64(x2, x2)
	lo, c = bits.Add64(lo, 0, c)
	hi += c
	w[4], c = bits.Add64(w[4], lo, 0)
	w[5], c = bits.Add64(w[5], hi, c)
	hi, lo = bits.Mul64(x3, x3)
	lo, c = bits.Add64(lo, 0, c)
	hi += c
	w[6], c = bits.Add64(w[6], lo, 0)
	w[7], c = bits.Add64(w[7], hi, c)
	hi, lo = bits.Mul64(x4, x4)
	lo, c = bits.Add64(lo, 0, c)
	hi += c
	w[8], c = bits.Add64(w[8], lo, 0)
	w[9], c = bits.Add64(w[9], hi, c)
	hi, lo = bits.Mul64(x5, x5)
	lo, c = bits.Add64(lo, 0, c)
	hi += c
	w[10], c = bits.Add64(w[10], lo, 0)
	w[11], _ = bits.Add64(w[11], hi, c)

	// Montgomery reduction: six rounds of w += m·p·2^{64i} with
	// m = w[i]·(−p⁻¹), then shift down by 2^384. The per-round carry out of
	// word i+6 is accumulated separately (words above i+6 are only touched
	// through this chain, so a single deferred carry word per round
	// suffices).
	var carries [6]uint64
	for i := 0; i < 6; i++ {
		m := w[i] * pInvNegC
		var cr uint64
		cr = madd0(m, pc0, w[i])
		cr, w[i+1] = madd(m, pc1, w[i+1], cr)
		cr, w[i+2] = madd(m, pc2, w[i+2], cr)
		cr, w[i+3] = madd(m, pc3, w[i+3], cr)
		cr, w[i+4] = madd(m, pc4, w[i+4], cr)
		cr, w[i+5] = madd(m, pc5, w[i+5], cr)
		carries[i] = cr
	}
	// Fold the deferred carries into the top half: carry i lands at word
	// i+6.
	var t0, t1, t2, t3, t4, t5 uint64
	t0, c = bits.Add64(w[6], carries[0], 0)
	t1, c = bits.Add64(w[7], carries[1], c)
	t2, c = bits.Add64(w[8], carries[2], c)
	t3, c = bits.Add64(w[9], carries[3], c)
	t4, c = bits.Add64(w[10], carries[4], c)
	t5, _ = bits.Add64(w[11], carries[5], c)

	var b uint64
	var s0, s1, s2, s3, s4, s5 uint64
	s0, b = bits.Sub64(t0, pc0, 0)
	s1, b = bits.Sub64(t1, pc1, b)
	s2, b = bits.Sub64(t2, pc2, b)
	s3, b = bits.Sub64(t3, pc3, b)
	s4, b = bits.Sub64(t4, pc4, b)
	s5, b = bits.Sub64(t5, pc5, b)
	if b == 0 { // t >= p
		z[0], z[1], z[2], z[3], z[4], z[5] = s0, s1, s2, s3, s4, s5
	} else {
		z[0], z[1], z[2], z[3], z[4], z[5] = t0, t1, t2, t3, t4, t5
	}
	return z
}

var pMinus2 *big.Int

func init() {
	pm, _ := new(big.Int).SetString(modulusHex, 16)
	pMinus2 = pm.Sub(pm, big.NewInt(2))
}

// Exp sets z = x^e and returns z.
func (z *Element) Exp(x *Element, e *big.Int) *Element {
	if e.Sign() == 0 {
		return z.SetOne()
	}
	base := *x
	res := one
	for i := e.BitLen() - 1; i >= 0; i-- {
		res.Square(&res)
		if e.Bit(i) == 1 {
			res.Mul(&res, &base)
		}
	}
	*z = res
	return z
}

// Inverse sets z = 1/x (0 for x = 0) and returns z.
func (z *Element) Inverse(x *Element) *Element {
	if x.IsZero() {
		return z.SetZero()
	}
	return z.Exp(x, pMinus2)
}

// String returns the decimal representation.
func (z *Element) String() string {
	var v big.Int
	z.BigInt(&v)
	return v.String()
}
