package fp

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBig(rng *rand.Rand) *big.Int {
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(rng.Intn(256))
	}
	v := new(big.Int).SetBytes(buf)
	return v.Mod(v, pBig)
}

func toBig(e *Element) *big.Int {
	var v big.Int
	e.BigInt(&v)
	return &v
}

func TestModulusConstants(t *testing.T) {
	if pBig.BitLen() != 381 {
		t.Fatalf("modulus bit length = %d, want 381", pBig.BitLen())
	}
	if !pBig.ProbablyPrime(32) {
		t.Fatal("modulus not prime")
	}
	if pInvNeg*p[0] != ^uint64(0) {
		t.Fatal("pInvNeg incorrect")
	}
	if toBig(&one).Cmp(big.NewInt(1)) != 0 {
		t.Fatal("Montgomery one decodes wrong")
	}
}

func TestArithmeticAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		av, bv := randBig(rng), randBig(rng)
		var a, b Element
		a.SetBigInt(av)
		b.SetBigInt(bv)

		var sum, diff, prod, neg Element
		sum.Add(&a, &b)
		diff.Sub(&a, &b)
		prod.Mul(&a, &b)
		neg.Neg(&a)

		check := func(name string, got *Element, want *big.Int) {
			w := new(big.Int).Mod(want, pBig)
			if toBig(got).Cmp(w) != 0 {
				t.Fatalf("%s mismatch at %d", name, i)
			}
		}
		check("add", &sum, new(big.Int).Add(av, bv))
		check("sub", &diff, new(big.Int).Sub(av, bv))
		check("mul", &prod, new(big.Int).Mul(av, bv))
		check("neg", &neg, new(big.Int).Neg(av))
	}
}

// TestSquareMatchesMul pins the dedicated SOS squaring to the generic CIOS
// multiplication over random elements and the values most likely to trip the
// carry chains (0, 1, p−1, elements with saturated limbs).
func TestSquareMatchesMul(t *testing.T) {
	check := func(x *Element) {
		var want, got Element
		want.Mul(x, x)
		got.Square(x)
		if !want.Equal(&got) {
			t.Fatalf("Square mismatch for %s", x.String())
		}
	}
	var e Element
	check(e.SetZero())
	check(e.SetOne())
	check(e.SetBigInt(new(big.Int).Sub(pBig, big.NewInt(1))))
	check(e.SetBigInt(new(big.Int).Rsh(pBig, 1)))
	check(e.SetHex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		e.SetBigInt(randBig(rng))
		check(&e)
		// Also exercise the in-place aliasing path.
		var alias Element
		alias.Set(&e)
		alias.Square(&alias)
		var want Element
		want.Mul(&e, &e)
		if !alias.Equal(&want) {
			t.Fatalf("aliased Square mismatch at %d", i)
		}
	}
}

// TestThirdRootOne checks the derived β: a nontrivial cube root of unity.
func TestThirdRootOne(t *testing.T) {
	beta := ThirdRootOne()
	if beta.IsOne() || beta.IsZero() {
		t.Fatal("β is trivial")
	}
	var cube Element
	cube.Square(&beta)
	cube.Mul(&cube, &beta)
	if !cube.IsOne() {
		t.Fatal("β³ != 1")
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 30; i++ {
		var a Element
		a.SetBigInt(randBig(rng))
		if a.IsZero() {
			continue
		}
		var inv, prod Element
		inv.Inverse(&a)
		prod.Mul(&a, &inv)
		if !prod.IsOne() {
			t.Fatalf("inverse mismatch at %d", i)
		}
	}
	var z Element
	z.Inverse(&zero)
	if !z.IsZero() {
		t.Fatal("Inverse(0) != 0")
	}
}

func TestQuickProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	gen := func() Element {
		var e Element
		e.SetBigInt(randBig(rng))
		return e
	}
	assoc := func(_ int) bool {
		a, b, c := gen(), gen(), gen()
		var x, y Element
		x.Mul(&a, &b)
		x.Mul(&x, &c)
		y.Mul(&b, &c)
		y.Mul(&a, &y)
		return x.Equal(&y)
	}
	distrib := func(_ int) bool {
		a, b, c := gen(), gen(), gen()
		var bc, l, ab, ac, r Element
		bc.Add(&b, &c)
		l.Mul(&a, &bc)
		ab.Mul(&a, &b)
		ac.Mul(&a, &c)
		r.Add(&ab, &ac)
		return l.Equal(&r)
	}
	if err := quick.Check(assoc, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
	if err := quick.Check(distrib, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 20; i++ {
		var a Element
		a.SetBigInt(randBig(rng))
		b := a.Bytes()
		var back Element
		back.SetBytes(b[:])
		if !back.Equal(&a) {
			t.Fatal("bytes round trip mismatch")
		}
	}
}

func TestSetHex(t *testing.T) {
	var a Element
	a.SetHex("1a")
	var want Element
	want.SetUint64(26)
	if !a.Equal(&want) {
		t.Fatal("SetHex mismatch")
	}
}

func BenchmarkMul(b *testing.B) {
	var x, y Element
	x.SetUint64(0xdeadbeef)
	y.SetHex(modulusHex[:90])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Mul(&x, &y)
	}
}

func BenchmarkSquare(b *testing.B) {
	var x Element
	x.SetHex(modulusHex[:90])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Square(&x)
	}
}
