package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestStageDAGOrdering(t *testing.T) {
	g := NewGraph(context.Background(), 4)
	var order atomic.Int64
	stamp := func() int64 { return order.Add(1) }

	a := Stage(g, "a", Span(1, 2), func(ctx context.Context, w int) (int64, error) {
		if w < 1 || w > 2 {
			t.Errorf("stage a granted %d workers, want 1..2", w)
		}
		return stamp(), nil
	})
	b := Stage(g, "b", Span(1, 4), func(ctx context.Context, w int) (int64, error) {
		return stamp(), nil
	}, a)
	c := Stage(g, "c", Coordinate(), func(ctx context.Context, w int) (int64, error) {
		if w != 0 {
			t.Errorf("leaseless stage granted %d workers", w)
		}
		return stamp(), nil
	}, a, b)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	ta, tb, tc := a.MustWait(), b.MustWait(), c.MustWait()
	if !(ta < tb && tb < tc) {
		t.Fatalf("dependency order violated: a=%d b=%d c=%d", ta, tb, tc)
	}
	if g.Budget().InUse() != 0 {
		t.Fatalf("leases leaked: %s", g.Budget())
	}
}

func TestStageErrorFailsDependents(t *testing.T) {
	g := NewGraph(context.Background(), 2)
	boom := errors.New("boom")
	ran := atomic.Bool{}
	a := Stage(g, "a", Span(1, 1), func(ctx context.Context, w int) (int, error) {
		return 0, boom
	})
	b := Stage(g, "b", Span(1, 1), func(ctx context.Context, w int) (int, error) {
		ran.Store(true)
		return 1, nil
	}, a)
	err := g.Wait()
	if !errors.Is(err, boom) {
		t.Fatalf("Wait error = %v, want wrapped boom", err)
	}
	if _, berr := b.Wait(context.Background()); !errors.Is(berr, boom) {
		t.Fatalf("dependent error = %v, want propagated boom", berr)
	}
	if ran.Load() {
		t.Fatal("dependent stage body ran despite failed dependency")
	}
	if g.Budget().InUse() != 0 {
		t.Fatalf("leases leaked after failure: %s", g.Budget())
	}
}

func TestStageBudgetNeverOversubscribed(t *testing.T) {
	const total = 3
	g := NewGraph(context.Background(), total)
	var inFlight, peak atomic.Int64
	for i := 0; i < 12; i++ {
		Stage(g, "s", Span(1, 2), func(ctx context.Context, w int) (struct{}, error) {
			cur := inFlight.Add(int64(w))
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(int64(-w))
			return struct{}{}, nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > total {
		t.Fatalf("budget oversubscribed: peak %d workers in flight, budget %d", p, total)
	}
}

func TestGraphCancelReleasesLeases(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGraph(ctx, 2)
	started := make(chan struct{})
	gate, openGate := NewFuture[struct{}]()
	hold := Stage(g, "hold", Span(2, 2), func(ctx context.Context, w int) (int, error) {
		close(started)
		openGate(struct{}{}, nil)
		<-ctx.Done()
		return 0, ctx.Err()
	})
	// Gated behind hold's lease (the gate resolves only once hold has the
	// whole budget); must be failed by the cancellation, not granted.
	parked := Stage(g, "parked", Span(1, 1), func(ctx context.Context, w int) (int, error) {
		return 1, nil
	}, gate)
	<-started
	cancel()
	err := g.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait error = %v, want context.Canceled", err)
	}
	if _, perr := parked.Wait(context.Background()); !errors.Is(perr, context.Canceled) {
		t.Fatalf("parked stage error = %v, want context.Canceled", perr)
	}
	if _, herr := hold.Wait(context.Background()); !errors.Is(herr, context.Canceled) {
		t.Fatalf("holding stage error = %v, want context.Canceled", herr)
	}
	if g.Budget().InUse() != 0 {
		t.Fatalf("leases leaked after cancel: %s", g.Budget())
	}
}

func TestAcquireUpTo(t *testing.T) {
	b := NewBudget(4)
	l1, err := b.AcquireUpTo(nil, 1, 3)
	if err != nil || l1.Workers() != 3 {
		t.Fatalf("first AcquireUpTo(1,3) = %d workers, err %v; want 3", l1.Workers(), err)
	}
	// 1 free: min fits, grant tops out at the free capacity.
	l2, err := b.AcquireUpTo(nil, 1, 4)
	if err != nil || l2.Workers() != 1 {
		t.Fatalf("second AcquireUpTo(1,4) = %d workers, err %v; want 1", l2.Workers(), err)
	}
	// Nothing free: a min=2 request parks until a release, then tops up.
	done := make(chan int)
	go func() {
		l3, err := b.AcquireUpTo(context.Background(), 2, 4)
		if err != nil {
			t.Error(err)
			done <- -1
			return
		}
		n := l3.Workers()
		l3.Release()
		done <- n
	}()
	select {
	case n := <-done:
		t.Fatalf("blocked AcquireUpTo returned %d before capacity freed", n)
	case <-time.After(10 * time.Millisecond):
	}
	l1.Release()
	if n := <-done; n != 3 {
		t.Fatalf("woken AcquireUpTo granted %d, want 3 (min 2 topped up to free capacity)", n)
	}
	l2.Release()
	if b.InUse() != 0 {
		t.Fatalf("budget not drained: %s", b)
	}
}

func TestMustWaitPanicsUnresolved(t *testing.T) {
	f, _ := NewFuture[int]()
	defer func() {
		if recover() == nil {
			t.Fatal("MustWait on unresolved future did not panic")
		}
	}()
	f.MustWait()
}
