package parallel

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestBudgetAcquireRelease(t *testing.T) {
	b := NewBudget(4)
	if b.Total() != 4 {
		t.Fatalf("Total = %d, want 4", b.Total())
	}
	l1, err := b.Acquire(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if l1.Workers() != 3 || b.InUse() != 3 {
		t.Fatalf("lease %d workers, in use %d; want 3, 3", l1.Workers(), b.InUse())
	}
	// A second acquire that fits proceeds immediately.
	l2, err := b.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.InUse() != 4 {
		t.Fatalf("in use %d, want 4", b.InUse())
	}
	// Requests are clamped: 0 becomes 1, over-Total becomes Total.
	if l := b.TryAcquire(0); l != nil {
		t.Fatal("TryAcquire(0) should fail with a full budget")
	}
	l1.Release()
	l1.Release() // idempotent
	if b.InUse() != 1 {
		t.Fatalf("in use %d after releases, want 1", b.InUse())
	}
	// Oversized requests clamp to Total: with one worker still leased a
	// clamped-to-4 request cannot fit…
	if l := b.TryAcquire(99); l != nil {
		t.Fatal("TryAcquire(99) should not fit with 1 worker leased")
	}
	l2.Release()
	// …but it grants the whole budget once everything is free.
	l4 := b.TryAcquire(99)
	if l4 == nil || l4.Workers() != 4 {
		t.Fatalf("TryAcquire(99) = %v, want a 4-worker lease", l4)
	}
	l4.Release()
}

func TestBudgetBlocksUntilRelease(t *testing.T) {
	b := NewBudget(2)
	l1, err := b.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan *Lease)
	go func() {
		l, err := b.Acquire(context.Background(), 1)
		if err != nil {
			t.Error(err)
		}
		got <- l
	}()
	select {
	case <-got:
		t.Fatal("acquire should have blocked on a full budget")
	case <-time.After(20 * time.Millisecond):
	}
	l1.Release()
	select {
	case l := <-got:
		l.Release()
	case <-time.After(time.Second):
		t.Fatal("release did not wake the waiter")
	}
	if b.InUse() != 0 {
		t.Fatalf("in use %d, want 0", b.InUse())
	}
}

func TestBudgetAcquireCancellation(t *testing.T) {
	b := NewBudget(1)
	l1, _ := b.Acquire(context.Background(), 1)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := b.Acquire(ctx, 1)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The cancelled waiter must not leak budget: releasing l1 leaves an
	// empty pool.
	l1.Release()
	if b.InUse() != 0 {
		t.Fatalf("in use %d after cancelled waiter, want 0", b.InUse())
	}
	// And the budget still grants.
	l2, err := b.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	l2.Release()
}

func TestBudgetFIFOFairness(t *testing.T) {
	b := NewBudget(2)
	l1, _ := b.Acquire(context.Background(), 2)

	order := make(chan int, 2)
	var ready sync.WaitGroup
	ready.Add(1)
	go func() { // first waiter: wants the whole budget
		ready.Done()
		l, err := b.Acquire(context.Background(), 2)
		if err != nil {
			t.Error(err)
			return
		}
		order <- 1
		l.Release()
	}()
	ready.Wait()
	time.Sleep(10 * time.Millisecond) // let waiter 1 park first
	go func() {                       // second waiter: small request behind the big one
		l, err := b.Acquire(context.Background(), 1)
		if err != nil {
			t.Error(err)
			return
		}
		order <- 2
		l.Release()
	}()
	time.Sleep(10 * time.Millisecond)
	l1.Release()
	if first := <-order; first != 1 {
		t.Fatalf("waiter %d granted first; want the FIFO head (1)", first)
	}
	<-order
}

func TestBudgetConcurrentStress(t *testing.T) {
	b := NewBudget(3)
	var wg sync.WaitGroup
	var mu sync.Mutex
	maxSeen := 0
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			l, err := b.Acquire(context.Background(), 1+n%3)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			if u := b.InUse(); u > maxSeen {
				maxSeen = u
			}
			mu.Unlock()
			l.Release()
		}(i)
	}
	wg.Wait()
	if b.InUse() != 0 {
		t.Fatalf("in use %d after all releases, want 0", b.InUse())
	}
	if maxSeen > 3 {
		t.Fatalf("budget oversubscribed: saw %d in use, cap 3", maxSeen)
	}
}

func TestOutstandingLeases(t *testing.T) {
	b := NewBudget(4)
	if n := b.OutstandingLeases(); n != 0 {
		t.Fatalf("fresh budget reports %d leases", n)
	}
	l1, _ := b.Acquire(context.Background(), 2)
	l2 := b.TryAcquire(1)
	if n := b.OutstandingLeases(); n != 2 {
		t.Fatalf("outstanding = %d, want 2", n)
	}
	l1.Release()
	l1.Release() // idempotent: must not double-decrement
	if n := b.OutstandingLeases(); n != 1 {
		t.Fatalf("outstanding after release = %d, want 1", n)
	}
	l2.Release()
	if n := b.OutstandingLeases(); n != 0 {
		t.Fatalf("outstanding after all releases = %d, want 0", n)
	}

	// A grant that races its context's cancellation is handed straight
	// back and never counts as outstanding.
	l3, _ := b.Acquire(context.Background(), 4)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if l, err := b.Acquire(ctx, 1); err == nil {
			l.Release()
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the acquire park
	cancel()
	<-done
	l3.Release()
	if n := b.OutstandingLeases(); n != 0 {
		t.Fatalf("outstanding after cancelled waiter = %d, want 0", n)
	}
}
