package parallel

import (
	"context"
	"fmt"
	"sync"
)

// Budget is a leasable pool of workers shared by concurrent coarse tasks —
// the serving layer's in-flight proofs and preprocessing runs. Where Split
// statically divides a budget among k sub-tasks that are all known up
// front, a Budget tracks a *changing* set of tenants: each task Acquires a
// lease before running its kernels and Releases it when done (or when its
// context is cancelled), so the whole process never runs more than Total
// workers' worth of parallel loops at once, no matter how requests overlap.
//
// Acquire blocks until the requested workers are free, honouring context
// cancellation, and grants are FIFO-fair: a large request parked at the
// head of the queue is not starved by a stream of small ones.
type Budget struct {
	mu    sync.Mutex
	total int
	inUse int
	// leases counts granted-but-unreleased Lease values — the invariant
	// the service's leak tests pin to zero after faults and panics.
	leases int
	// waiters is a FIFO of blocked Acquire calls; each is woken (channel
	// closed) when it is at the head and its request fits.
	waiters []*waiter
}

type waiter struct {
	n   int // minimum workers the request needs
	max int // most it can use; the grant tops up to this from free capacity
	// granted is the actual grant, set (under the budget mutex) before ready
	// is closed.
	granted int
	ready   chan struct{}
}

// NewBudget returns a budget of `total` leasable workers (<= 0 means
// GOMAXPROCS, matching Workers).
func NewBudget(total int) *Budget {
	return &Budget{total: Workers(total)}
}

// Total returns the budget's worker capacity.
func (b *Budget) Total() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// InUse returns the number of workers currently leased.
func (b *Budget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inUse
}

// clamp bounds a request to [1, total] so a lease is always grantable:
// callers ask for their fair share and the budget turns degenerate
// requests (0, negative, or more than the machine) into sane ones.
func (b *Budget) clamp(n int) int {
	if n < 1 {
		n = 1
	}
	if n > b.total {
		n = b.total
	}
	return n
}

// TryAcquire leases n workers (clamped to [1, Total]) if they are free
// right now, returning nil without blocking when they are not.
func (b *Budget) TryAcquire(n int) *Lease {
	b.mu.Lock()
	defer b.mu.Unlock()
	n = b.clamp(n)
	if len(b.waiters) > 0 || b.inUse+n > b.total {
		return nil
	}
	b.inUse += n
	b.leases++
	return &Lease{b: b, n: n}
}

// OutstandingLeases returns the number of leases granted and not yet
// released. A quiesced system must report 0: the service's fault and
// chaos tests assert it after injected panics, cancellations, and
// crashes, because a leaked lease silently shrinks the machine for every
// job that follows.
func (b *Budget) OutstandingLeases() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.leases
}

// Acquire leases n workers (clamped to [1, Total]), blocking until they
// are free or ctx is done. The returned lease MUST be released exactly
// once; Release is idempotent so `defer lease.Release()` is always safe.
func (b *Budget) Acquire(ctx context.Context, n int) (*Lease, error) {
	return b.AcquireUpTo(ctx, n, n)
}

// AcquireUpTo leases between min and max workers: it blocks until min are
// free (FIFO-fair, honouring ctx), then tops the grant up with whatever
// additional capacity is free at that moment, capped at max. Pipelined
// prover stages use it to make progress with one worker while an earlier
// stage still holds the rest, without ever oversubscribing the budget.
// Lease.Workers reports the actual grant.
func (b *Budget) AcquireUpTo(ctx context.Context, min, max int) (*Lease, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	b.mu.Lock()
	min = b.clamp(min)
	max = b.clamp(max)
	if max < min {
		max = min
	}
	if len(b.waiters) == 0 && b.inUse+min <= b.total {
		n := b.total - b.inUse
		if n > max {
			n = max
		}
		b.inUse += n
		b.leases++
		b.mu.Unlock()
		return &Lease{b: b, n: n}, nil
	}
	w := &waiter{n: min, max: max, ready: make(chan struct{})}
	b.waiters = append(b.waiters, w)
	b.mu.Unlock()

	select {
	case <-w.ready:
		return &Lease{b: b, n: w.granted}, nil
	case <-ctx.Done():
		b.mu.Lock()
		defer b.mu.Unlock()
		select {
		case <-w.ready:
			// The grant raced the cancellation: the workers were already
			// counted against the budget, so hand them straight back.
			b.inUse -= w.granted
			b.leases--
			b.wake()
			return nil, ctx.Err()
		default:
		}
		for i, q := range b.waiters {
			if q == w {
				b.waiters = append(b.waiters[:i], b.waiters[i+1:]...)
				break
			}
		}
		return nil, ctx.Err()
	}
}

// wake grants queued requests from the head while their minimum fits,
// topping each grant up to its max from the capacity left after the
// minimum is reserved. Caller holds mu.
func (b *Budget) wake() {
	for len(b.waiters) > 0 {
		w := b.waiters[0]
		if b.inUse+w.n > b.total {
			return
		}
		g := b.total - b.inUse
		if g > w.max {
			g = w.max
		}
		w.granted = g
		b.inUse += g
		b.leases++
		b.waiters = b.waiters[1:]
		close(w.ready)
	}
}

// Lease is a claim on part of a Budget. Workers is the granted count —
// the budget to pass into the prover's parallel kernels.
type Lease struct {
	b    *Budget
	n    int
	once sync.Once
}

// Workers returns the number of workers this lease grants.
func (l *Lease) Workers() int { return l.n }

// Release returns the lease's workers to the budget. Idempotent.
func (l *Lease) Release() {
	if l == nil {
		return
	}
	l.once.Do(func() {
		l.b.mu.Lock()
		l.b.inUse -= l.n
		l.b.leases--
		l.b.wake()
		l.b.mu.Unlock()
	})
}

// String describes the budget state for logs and error messages.
func (b *Budget) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return fmt.Sprintf("budget{%d/%d in use, %d waiting}", b.inUse, b.total, len(b.waiters))
}
