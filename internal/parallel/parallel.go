// Package parallel is the shared execution engine of the prover stack. Every
// hot kernel — MLE folds, Eq expansion, Pippenger bucket accumulation, PCS
// commitments, permutation table construction, and the SumCheck scan — runs
// its data-parallel loops through this package so that one worker budget,
// chosen at the session API, governs the whole proof.
//
// Design rules the kernels rely on:
//
//   - Determinism. Chunk boundaries depend only on (n, workers), and
//     MapReduce merges partial results in ascending chunk order. Combined
//     with the exactness of field and group arithmetic this makes every
//     proof byte-identical across worker budgets.
//   - No oversubscription. A budget of w spawns at most w goroutines per
//     loop; nested kernels receive explicit sub-budgets (see Split) instead
//     of each grabbing GOMAXPROCS.
//   - No steady-state allocation. Scratch []ff.Element buffers come from a
//     power-of-two-class sync.Pool arena (GetScratch/PutScratch), so
//     repeated proofs reuse the same table-sized buffers instead of
//     churning the GC.
//
// For a static set of concurrent sub-tasks, Split divides a budget up
// front; for a changing set of tenants (the proving service's overlapping
// requests), Budget leases workers dynamically under the same global cap
// — see Budget, Acquire, and Lease.
package parallel

import (
	"math/bits"
	"runtime"
	"sync"

	"zkphire/internal/ff"
)

// minGrain is the smallest number of loop iterations worth shipping to
// another goroutine; below this the spawn/join overhead dominates the few
// microseconds of field arithmetic.
const minGrain = 1 << 10

// Workers resolves a worker budget: values <= 0 mean GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Split divides a worker budget among k concurrent sub-tasks, returning the
// per-task budget (at least 1). BatchProve uses it to give each in-flight
// proof its share of the machine, and the prover uses it when it runs
// independent commitments concurrently.
func Split(workers, k int) int {
	workers = Workers(workers)
	if k <= 1 {
		return workers
	}
	per := workers / k
	if per < 1 {
		per = 1
	}
	return per
}

// WorthSplitting reports whether a loop of n iterations could be chunked
// across more than one goroutine at any budget. Callers use it to skip
// setting up out-of-place scratch buffers when the loop would run inline
// anyway.
func WorthSplitting(n int) bool { return n >= 2*minGrain }

// chunks returns the number of contiguous chunks [0,n) is cut into for the
// given budget: at most `workers`, and never so many that a chunk drops
// below grain iterations.
func chunks(workers, n, grain int) int {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if grain < 1 {
		grain = 1
	}
	maxByGrain := n / grain
	if maxByGrain < 1 {
		maxByGrain = 1
	}
	if workers > maxByGrain {
		workers = maxByGrain
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// For runs body over [0, n) in contiguous chunks, using at most `workers`
// goroutines (<= 0 means GOMAXPROCS). body must treat its [lo, hi) range as
// exclusive property; ranges never overlap. With one chunk the body runs
// inline on the calling goroutine. The default grain assumes ~100ns
// iterations (field arithmetic); use ForGrain for coarser work items.
func For(workers, n int, body func(lo, hi int)) {
	ForGrain(workers, n, minGrain, body)
}

// ForGrain is For with an explicit minimum chunk size. Curve-point loops
// (~microseconds per iteration) use a small grain so even modest inputs
// split; field-element loops keep the default.
func ForGrain(workers, n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	nc := chunks(workers, n, grain)
	if nc == 1 {
		body(0, n)
		return
	}
	chunk := (n + nc - 1) / nc
	var wg sync.WaitGroup
	for c := 0; c < nc; c++ {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MapReduce runs mapper over contiguous chunks of [0, n) and folds the
// partial results together in ascending chunk order:
//
//	merge(...merge(merge(m(c0), m(c1)), m(c2))..., m(ck))
//
// The chunk decomposition and merge order depend only on (n, workers), so
// the result is deterministic for exact (associative) merges and
// bit-reproducible even for floating-point ones at a fixed budget.
// It panics if n <= 0 (there is nothing to map).
func MapReduce[T any](workers, n int, mapper func(lo, hi int) T, merge func(acc, next T) T) T {
	if n <= 0 {
		panic("parallel: MapReduce over empty range")
	}
	nc := chunks(workers, n, minGrain)
	if nc == 1 {
		return mapper(0, n)
	}
	chunk := (n + nc - 1) / nc
	partials := make([]T, nc)
	var wg sync.WaitGroup
	for c := 0; c < nc; c++ {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			nc = c
			break
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			partials[c] = mapper(lo, hi)
		}(c, lo, hi)
	}
	wg.Wait()
	acc := partials[0]
	for c := 1; c < nc; c++ {
		acc = merge(acc, partials[c])
	}
	return acc
}

// Run executes k independent tasks with at most `workers` of them in flight
// at once. Unlike For it does not chunk — each task is one unit — so it
// suits coarse jobs like "commit one wire each". Task index order of
// completion is unspecified; callers write results into per-index slots.
func Run(workers, k int, task func(i int)) {
	if k <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > k {
		workers = k
	}
	if workers == 1 {
		for i := 0; i < k; i++ {
			task(i)
		}
		return
	}
	var next sync.Mutex
	idx := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				next.Lock()
				i := idx
				idx++
				next.Unlock()
				if i >= k {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
}

// --- scratch arena ---

// maxPoolClass bounds the pooled buffer size at 2^maxPoolClass elements
// (2^26 × 32 bytes = 2 GiB for ff.Element); anything larger is allocated
// directly.
const maxPoolClass = 26

// Arena is a power-of-two-class sync.Pool of []T scratch buffers. The zero
// value is ready to use. Each hot kernel declares one package-level Arena
// per element type it recycles (field elements here, curve points and digit
// buffers in internal/curve), so repeated proofs reuse the same table-sized
// buffers instead of churning the GC.
type Arena[T any] struct {
	pools [maxPoolClass + 1]sync.Pool
	// boxes recycles the *[]T headers the pools traffic in. sync.Pool stores
	// interfaces, so Put must hand it a pointer; allocating a fresh header
	// per Put would make every Get/Put cycle cost one heap allocation, which
	// is exactly what the arena exists to avoid. Boxes parked here hold nil
	// slices.
	boxes sync.Pool
}

// Get returns a []T of length n. The contents are arbitrary (not zeroed) —
// callers overwrite (or explicitly clear) before reading. Buffers are pooled
// by power-of-two capacity class.
func (a *Arena[T]) Get(n int) []T {
	if n <= 0 {
		return nil
	}
	k := bits.Len(uint(n - 1)) // ceil(log2 n)
	if k > maxPoolClass {
		return make([]T, n)
	}
	if v := a.pools[k].Get(); v != nil {
		box := v.(*[]T)
		buf := *box
		*box = nil
		a.boxes.Put(box)
		return buf[:n]
	}
	return make([]T, n, 1<<k)
}

// Put returns a buffer obtained from Get to the arena. It is safe (a no-op)
// to pass buffers from other sources with non-power-of-two capacity, and
// safe to pass nil. Steady-state Get/Put cycles allocate nothing: the slice
// header box travels between the class pool and the box pool.
func (a *Arena[T]) Put(buf []T) {
	c := cap(buf)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	k := bits.Len(uint(c - 1))
	if k > maxPoolClass {
		return
	}
	var box *[]T
	if v := a.boxes.Get(); v != nil {
		box = v.(*[]T)
	} else {
		box = new([]T)
	}
	*box = buf[:c]
	a.pools[k].Put(box)
}

// scratchArena backs GetScratch/PutScratch, the field-element instance every
// MLE/SumCheck/PCS kernel shares.
var scratchArena Arena[ff.Element]

// GetScratch returns a []ff.Element of length n from the shared arena. The
// contents are arbitrary (not zeroed) — callers overwrite before reading.
func GetScratch(n int) []ff.Element { return scratchArena.Get(n) }

// PutScratch returns a buffer obtained from GetScratch to the arena.
func PutScratch(buf []ff.Element) { scratchArena.Put(buf) }
