package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"

	"zkphire/internal/ff"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestSplit(t *testing.T) {
	if got := Split(8, 4); got != 2 {
		t.Fatalf("Split(8,4) = %d, want 2", got)
	}
	if got := Split(2, 8); got != 1 {
		t.Fatalf("Split(2,8) = %d, want 1", got)
	}
	if got := Split(8, 0); got != 8 {
		t.Fatalf("Split(8,0) = %d, want 8", got)
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, minGrain - 1, minGrain, 3*minGrain + 17} {
		for _, w := range []int{1, 2, 3, 16, 0} {
			seen := make([]int32, n)
			For(w, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, c)
				}
			}
		}
	}
}

func TestMapReduceOrderedAndComplete(t *testing.T) {
	n := 4*minGrain + 123
	want := n * (n - 1) / 2
	for _, w := range []int{1, 2, 5, 0} {
		got := MapReduce(w, n, func(lo, hi int) int {
			s := 0
			for i := lo; i < hi; i++ {
				s += i
			}
			return s
		}, func(a, b int) int { return a + b })
		if got != want {
			t.Fatalf("w=%d: sum = %d, want %d", w, got, want)
		}
	}

	// Ordered merge: concatenating chunk-local slices must reproduce the
	// identity sequence regardless of worker budget.
	ids := MapReduce(4, n, func(lo, hi int) []int {
		out := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	}, func(a, b []int) []int { return append(a, b...) })
	for i, v := range ids {
		if v != i {
			t.Fatalf("merge order broken at %d: got %d", i, v)
		}
	}
}

func TestRun(t *testing.T) {
	for _, w := range []int{1, 3, 0} {
		k := 37
		hits := make([]int32, k)
		Run(w, k, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, c := range hits {
			if c != 1 {
				t.Fatalf("w=%d: task %d ran %d times", w, i, c)
			}
		}
	}
	Run(4, 0, func(int) { t.Fatal("task ran for k=0") })
}

func TestScratchArena(t *testing.T) {
	buf := GetScratch(1000)
	if len(buf) != 1000 {
		t.Fatalf("len = %d", len(buf))
	}
	if cap(buf) != 1024 {
		t.Fatalf("cap = %d, want power-of-two class 1024", cap(buf))
	}
	buf[0] = ff.One()
	PutScratch(buf)

	if got := GetScratch(0); got != nil {
		t.Fatalf("GetScratch(0) = %v, want nil", got)
	}
	PutScratch(nil)                     // must not panic
	PutScratch(make([]ff.Element, 100)) // non-power-of-two cap: no-op
}

// TestGenericArena covers the typed Arena the curve layer instantiates for
// points, digits, and occupancy maps: round-trip reuse, capacity classes,
// and the degenerate inputs.
func TestGenericArena(t *testing.T) {
	var a Arena[[3]uint64]
	buf := a.Get(100)
	if len(buf) != 100 || cap(buf) != 128 {
		t.Fatalf("len/cap = %d/%d, want 100/128", len(buf), cap(buf))
	}
	buf[0] = [3]uint64{1, 2, 3}
	a.Put(buf)
	again := a.Get(128)
	if cap(again) != 128 {
		t.Fatalf("recycled cap = %d", cap(again))
	}
	if got := a.Get(0); got != nil {
		t.Fatalf("Get(0) = %v, want nil", got)
	}
	a.Put(nil)                    // must not panic
	a.Put(make([][3]uint64, 100)) // non-power-of-two cap: no-op

	var bools Arena[bool]
	flags := bools.Get(10)
	for i := range flags {
		flags[i] = true
	}
	bools.Put(flags)
	flags = bools.Get(10)
	// Contents are arbitrary after a round trip; clear must make them usable.
	clear(flags)
	for i, f := range flags {
		if f {
			t.Fatalf("flag %d still set after clear", i)
		}
	}
}
