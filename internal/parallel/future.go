package parallel

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync"
	"time"
)

// stageTrace, set via ZKPHIRE_STAGE_TRACE=1, logs each stage's queue delay
// (dependencies resolved → lease granted), grant width, and run time to
// stderr — the schedule-tuning view of a pipelined proof. Logging only;
// proof bytes are unaffected.
var stageTrace = os.Getenv("ZKPHIRE_STAGE_TRACE") != ""

// This file is the prover's stage scheduler: a small future/promise layer
// that executes a dependency DAG of coarse prover stages (wire-commit MSMs,
// SumCheck provers, streamed commitments, batch evaluations) with the
// package's worker-budget discipline. Every goroutine the pipelined prover
// runs is spawned here — the zkvet norawgo invariant ("one worker budget
// governs the proof") extends to the pipeline because stages lease their
// workers from a shared Budget before touching a kernel, so overlapping
// stages can never oversubscribe the machine.

// Future is the resolved-once result slot of a scheduled stage. Wait blocks
// until the stage finishes (or ctx is done) and returns its value and error.
// A Future is also an Awaitable, so it can be a dependency of later stages.
type Future[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// NewFuture returns an unresolved future and its single-use resolve
// function. Stages get theirs from Stage; NewFuture exists for producers
// that complete outside the scheduler (tests, adapters).
func NewFuture[T any]() (*Future[T], func(T, error)) {
	f := &Future[T]{done: make(chan struct{})}
	var once sync.Once
	return f, func(v T, err error) {
		once.Do(func() {
			f.val, f.err = v, err
			close(f.done)
		})
	}
}

// Done returns a channel closed when the future is resolved.
func (f *Future[T]) Done() <-chan struct{} { return f.done }

// Err returns the stage error; valid only after Done is closed.
func (f *Future[T]) Err() error { return f.err }

// Wait blocks until the future resolves or ctx is done.
func (f *Future[T]) Wait(ctx context.Context) (T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// MustWait is Wait for dependents scheduled after the future's stage: by the
// time the scheduler runs them the future is resolved, so MustWait only
// reads. It panics if called on an unresolved future — that is a scheduling
// bug (a missing dependency), not a runtime condition.
func (f *Future[T]) MustWait() T {
	select {
	case <-f.done:
		return f.val
	default:
		panic("parallel: MustWait on unresolved future (missing stage dependency)")
	}
}

// Awaitable is anything a stage can depend on: a Future of any element type,
// or another synchronization source that reports completion and an error.
type Awaitable interface {
	Done() <-chan struct{}
	Err() error
}

// Graph schedules a dependency DAG of stages against one worker Budget.
// Stages declare their dependencies explicitly; the runner starts each
// stage's goroutine immediately but the stage blocks until every dependency
// has resolved, then leases workers, runs, releases, and resolves its
// future. The first stage error (or a ctx cancellation) cancels the graph
// context, failing remaining stages fast; Wait returns that first error
// after every stage goroutine has exited — at which point every lease has
// been released.
//
// The caller must declare dependencies that make the DAG acyclic AND cover
// every ordering constraint a stage relies on (in the prover: a stage that
// acquires a transcript.Sequencer slot interactively must depend on the
// closers of all earlier slots, or it would hold its lease while blocked on
// headship and could deadlock the budget).
type Graph struct {
	ctx    context.Context
	cancel context.CancelFunc
	budget *Budget
	wg     sync.WaitGroup

	mu       sync.Mutex
	firstErr error
}

// NewGraph returns a graph whose stages share a budget of `workers`
// (<= 0 means GOMAXPROCS). Cancelling ctx fails every unfinished stage.
func NewGraph(ctx context.Context, workers int) *Graph {
	if ctx == nil {
		ctx = context.Background()
	}
	gctx, cancel := context.WithCancel(ctx)
	return &Graph{ctx: gctx, cancel: cancel, budget: NewBudget(workers)}
}

// Workers returns the graph's total worker budget.
func (g *Graph) Workers() int { return g.budget.Total() }

// Budget exposes the graph's budget for stages that lease per work item
// (the streamed-commit consumer) instead of per stage.
func (g *Graph) Budget() *Budget { return g.budget }

// Context returns the graph's context (cancelled on first failure).
func (g *Graph) Context() context.Context { return g.ctx }

func (g *Graph) fail(err error) {
	g.mu.Lock()
	if g.firstErr == nil {
		g.firstErr = err
	}
	g.mu.Unlock()
	g.cancel()
}

// Wait blocks until every scheduled stage has finished and returns the
// first error. It must be called exactly once, after all Stage calls.
func (g *Graph) Wait() error {
	g.wg.Wait()
	g.cancel()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.firstErr
}

// StageOpts sizes a stage's worker lease. The stage blocks until MinWorkers
// are free (FIFO-fair against its sibling stages), then grabs whatever
// additional free capacity exists up to MaxWorkers — so a stage makes
// progress at MinWorkers while an overlapping stage drains, instead of
// stalling for its preferred width. MaxWorkers == 0 means the stage runs
// leaseless (pure coordination: transcript sealing, result assembly); its
// fn receives workers == 0 and must not run parallel kernels.
type StageOpts struct {
	MinWorkers int
	MaxWorkers int
}

// Span is a convenience StageOpts: at least min, up to max workers.
func Span(min, max int) StageOpts { return StageOpts{MinWorkers: min, MaxWorkers: max} }

// Coordinate is the leaseless StageOpts for stages that only sequence
// results or transcript traffic.
func Coordinate() StageOpts { return StageOpts{} }

// Stage schedules fn as a named stage of the graph. fn runs once every dep
// has resolved successfully and the stage's lease (per opts) is granted; it
// receives the graph context and the granted worker count. The returned
// future resolves with fn's result. If a dependency fails, the stage fails
// with that error without running fn. Stage must not be called after Wait.
func Stage[T any](g *Graph, name string, opts StageOpts, fn func(ctx context.Context, workers int) (T, error), deps ...Awaitable) *Future[T] {
	fut, resolve := NewFuture[T]()
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		var zero T
		for _, dep := range deps {
			select {
			case <-dep.Done():
				if err := dep.Err(); err != nil {
					resolve(zero, err)
					return
				}
			case <-g.ctx.Done():
				// A failing stage resolves its future before cancelling the
				// graph, so if this dependency is the culprit its error is
				// already readable — prefer it over the bare cancellation.
				select {
				case <-dep.Done():
					if err := dep.Err(); err != nil {
						resolve(zero, err)
						return
					}
				default:
				}
				resolve(zero, g.ctx.Err())
				g.fail(g.ctx.Err())
				return
			}
		}
		ready := time.Now()
		workers := 0
		var lease *Lease
		if opts.MaxWorkers != 0 {
			var err error
			lease, err = g.budget.AcquireUpTo(g.ctx, opts.MinWorkers, opts.MaxWorkers)
			if err != nil {
				resolve(zero, err)
				g.fail(err)
				return
			}
			defer lease.Release()
			workers = lease.Workers()
		}
		if stageTrace {
			start := time.Now()
			defer func() {
				log.Printf("stage %-22s workers=%d queued %7.1fms ran %8.1fms",
					name, workers, float64(start.Sub(ready).Microseconds())/1000, float64(time.Since(start).Microseconds())/1000)
			}()
		}
		// A lease grant can race a cancellation (the freed capacity wakes
		// this stage in the same instant the graph dies); never run the body
		// of a cancelled graph.
		if err := g.ctx.Err(); err != nil {
			resolve(zero, err)
			g.fail(err)
			return
		}
		v, err := fn(g.ctx, workers)
		// Release BEFORE resolving: a dependent woken by the resolution
		// acquires its own lease immediately, and its elastic top-up must see
		// this stage's workers as free capacity or every dependent would
		// systematically run at its minimum width. (The deferred Release is
		// idempotent and stays as the error/panic-path safety net.)
		lease.Release()
		if err != nil {
			err = fmt.Errorf("parallel: stage %s: %w", name, err)
			resolve(zero, err)
			g.fail(err)
			return
		}
		resolve(v, nil)
	}()
	return fut
}
