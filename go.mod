module zkphire

go 1.24
