package zkphire

import (
	"bytes"
	"context"
	"testing"
)

func compileCubic(t *testing.T, x, target uint64) *CompiledCircuit {
	t.Helper()
	b := NewBuilder(Vanilla)
	w := b.Secret(x)
	x3 := b.Mul(b.Mul(w, w), w)
	b.AssertEqualConst(b.AddConst(b.Add(x3, w), 5), target)
	compiled, err := Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	return compiled
}

func TestCircuitHashDeterministic(t *testing.T) {
	a := compileCubic(t, 3, 35)
	b := compileCubic(t, 3, 35)
	if a.Hash() != b.Hash() {
		t.Fatal("identical circuits hash differently")
	}
	if a.Hash().String() != b.Hash().String() {
		t.Fatal("hex form differs")
	}
	if len(a.Hash().String()) != 64 {
		t.Fatalf("hex hash length %d, want 64", len(a.Hash().String()))
	}
}

func TestCircuitHashDistinguishes(t *testing.T) {
	base := compileCubic(t, 3, 35)
	// A different witness value changes the wire tables, hence the hash.
	otherWitness := func() *CompiledCircuit {
		b := NewBuilder(Vanilla)
		w := b.Secret(2)
		x3 := b.Mul(b.Mul(w, w), w)
		b.AssertEqualConst(b.AddConst(b.Add(x3, w), 5), 15)
		c, err := Compile(b)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}()
	if base.Hash() == otherWitness.Hash() {
		t.Fatal("different witnesses, same hash")
	}
	// A different padded size changes the hash too.
	padded := func() *CompiledCircuit {
		b := NewBuilder(Vanilla)
		w := b.Secret(3)
		x3 := b.Mul(b.Mul(w, w), w)
		b.AssertEqualConst(b.AddConst(b.Add(x3, w), 5), 35)
		c, err := Compile(b, WithLogGates(5))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}()
	if base.Hash() == padded.Hash() {
		t.Fatal("different padding, same hash")
	}
}

func TestProverWorkersAccessorAndOverride(t *testing.T) {
	compiled := compileCubic(t, 3, 35)
	srs := SetupDeterministic(compiled.LogGates()+1, 7)
	p, err := NewProver(srs, compiled, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if p.Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2", p.Workers())
	}
	if p.Compiled() != compiled {
		t.Fatal("Compiled() does not return the session's circuit")
	}
	ctx := context.Background()
	base, err := p.Prove(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// ProveWorkers overrides the budget per call; the engine's determinism
	// guarantees byte-identical proofs at any budget.
	over, err := p.ProveWorkers(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := base.MarshalBinary()
	b2, _ := over.MarshalBinary()
	if !bytes.Equal(b1, b2) {
		t.Fatal("proof differs across worker budgets")
	}
}
