package zkphire

import "testing"

func TestPublicAPIEndToEnd(t *testing.T) {
	srs := SetupDeterministic(8, 1)
	b := NewCircuitBuilder()
	x := b.Secret(3)
	x2 := b.Mul(x, x)
	x3 := b.Mul(x2, x)
	s := b.Add(x3, x)
	out := b.AddConst(s, 5)
	b.AssertEqualConst(out, 35)

	proof, vk, err := ProveCircuit(srs, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCircuit(srs, vk, proof); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIRejectsBadWitness(t *testing.T) {
	srs := SetupDeterministic(8, 1)
	b := NewCircuitBuilder()
	x := b.Secret(4) // wrong witness
	x3 := b.Mul(b.Mul(x, x), x)
	b.AssertEqualConst(b.Add(x3, x), 30)
	if _, _, err := ProveCircuit(srs, b, 4); err == nil {
		t.Fatal("proving an unsatisfied circuit should fail fast")
	}
}

func TestAcceleratorEstimates(t *testing.T) {
	acc := DefaultAccelerator()
	est, err := acc.EstimateSumCheck(JellyfishZeroCheckID, 24)
	if err != nil {
		t.Fatal(err)
	}
	if est.Seconds <= 0 || est.Utilization <= 0 {
		t.Fatal("degenerate sumcheck estimate")
	}
	full, err := acc.EstimateProver(true, 24)
	if err != nil {
		t.Fatal(err)
	}
	if full.Seconds <= est.Seconds {
		t.Fatal("full protocol must cost more than one sumcheck")
	}
	if full.AreaMM2 < 200 || full.AreaMM2 > 400 {
		t.Fatalf("Table V design area %.1f mm² out of range", full.AreaMM2)
	}
	if _, err := acc.EstimateSumCheck(99, 20); err == nil {
		t.Fatal("unknown constraint accepted")
	}
}

func TestJellyfishPublicAPI(t *testing.T) {
	srs := SetupDeterministic(8, 2)
	b := NewJellyfishBuilder()
	x := b.Secret(2)
	y := b.Power5(x)                // 32
	z := b.DoubleMulAdd(y, x, x, x) // 64 + 4 = 68
	b.AssertEqualConst(z, 68)
	proof, vk, err := ProveJellyfish(srs, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCircuit(srs, vk, proof); err != nil {
		t.Fatal(err)
	}
}

func TestProofSerializationViaPublicAPI(t *testing.T) {
	srs := SetupDeterministic(8, 3)
	b := NewCircuitBuilder()
	x := b.Secret(5)
	b.AssertEqualConst(b.Mul(x, x), 25)
	proof, vk, err := ProveCircuit(srs, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	data, err := proof.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Proof
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if err := VerifyCircuit(srs, vk, &back); err != nil {
		t.Fatal(err)
	}
}
