package zkphire

import (
	"bytes"
	"context"
	"testing"
)

// buildCubic emits x³ + x = 30 (x = 3) through the Builder interface — the
// ONE code path both arithmetizations share.
func buildCubic(b Builder) {
	x := b.Secret(3)
	x3 := b.Mul(b.Mul(x, x), x)
	b.AssertEqualConst(b.Add(x3, x), 30)
}

func TestSessionProvesBothArithmetizations(t *testing.T) {
	srs := SetupDeterministic(8, 1)
	ctx := context.Background()
	for _, kind := range []Arithmetization{Vanilla, Jellyfish} {
		t.Run(kind.String(), func(t *testing.T) {
			b := NewBuilder(kind)
			buildCubic(b)
			compiled, err := Compile(b)
			if err != nil {
				t.Fatal(err)
			}
			if compiled.Arithmetization() != kind {
				t.Fatalf("compiled as %s, want %s", compiled.Arithmetization(), kind)
			}
			prover, err := NewProver(srs, compiled)
			if err != nil {
				t.Fatal(err)
			}
			proof, err := prover.Prove(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(srs, prover.VerifyingKey(), proof); err != nil {
				t.Fatal(err)
			}
			// The session amortizes: a second proof reuses the preprocessing
			// and must still verify.
			proof2, err := prover.Prove(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(srs, prover.VerifyingKey(), proof2); err != nil {
				t.Fatal(err)
			}
			// The verifying key round-trips for both gate tags.
			vkBytes, err := prover.VerifyingKey().MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			vk, err := UnmarshalVerifyingKey(vkBytes)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(srs, vk, proof); err != nil {
				t.Fatalf("proof rejected under decoded vk: %v", err)
			}
		})
	}
}

func TestCompileAutoSizesLogGates(t *testing.T) {
	b := NewCircuitBuilder()
	x := b.Secret(2)
	acc := x
	for i := 0; i < 9; i++ { // 9 gates > 2^3
		acc = b.Mul(acc, x)
	}
	compiled, err := Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	if compiled.LogGates() != 4 {
		t.Fatalf("auto-sized to 2^%d, want 2^4 for %d gates", compiled.LogGates(), b.GateCount())
	}
	if compiled.GateCount() != 9 {
		t.Fatalf("gate count %d, want 9", compiled.GateCount())
	}

	// Manual override grows the padding.
	compiled, err = Compile(b, WithLogGates(6))
	if err != nil {
		t.Fatal(err)
	}
	if compiled.LogGates() != 6 {
		t.Fatalf("WithLogGates(6) gave 2^%d", compiled.LogGates())
	}

	// A capacity too small for the circuit must fail.
	if _, err := Compile(b, WithLogGates(3)); err == nil {
		t.Fatal("9 gates accepted into 2^3 rows")
	}
}

func TestCompileRejectsBadWitness(t *testing.T) {
	for _, kind := range []Arithmetization{Vanilla, Jellyfish} {
		b := NewBuilder(kind)
		x := b.Secret(4) // wrong witness: 4³ + 4 ≠ 30
		x3 := b.Mul(b.Mul(x, x), x)
		b.AssertEqualConst(b.Add(x3, x), 30)
		if _, err := Compile(b); err == nil {
			t.Fatalf("%s: compiling an unsatisfied circuit should fail fast", kind)
		}
	}
}

func TestProofAndKeyRoundTripViaPublicAPI(t *testing.T) {
	srs := SetupDeterministic(8, 3)
	b := NewCircuitBuilder()
	x := b.Secret(5)
	b.AssertEqualConst(b.Mul(x, x), 25)
	compiled, err := Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	prover, err := NewProver(srs, compiled)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := prover.Prove(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Prove → MarshalBinary → UnmarshalBinary → Verify.
	data, err := proof.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Proof
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}

	// The verifying key round-trips too, and the decoded pair verifies —
	// the full wire path a separate verifier service exercises.
	vkBytes, err := prover.VerifyingKey().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	vk, err := UnmarshalVerifyingKey(vkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(srs, vk, &back); err != nil {
		t.Fatal(err)
	}

	// VK re-serialization is canonical.
	vkBytes2, err := vk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(vkBytes, vkBytes2) {
		t.Fatal("verifying-key serialization is not canonical")
	}

	// Corrupted keys are rejected, not mis-verified.
	bad := append([]byte(nil), vkBytes...)
	bad[0] ^= 0xff
	if _, err := UnmarshalVerifyingKey(bad); err == nil {
		t.Fatal("bad vk magic accepted")
	}
	// Truncation at EVERY offset must fail — the decoder may never
	// short-read its way to a "valid" key (regression: bytes.Reader.Read
	// returns partial buffers without error).
	for cut := 0; cut < len(vkBytes); cut++ {
		if _, err := UnmarshalVerifyingKey(vkBytes[:cut]); err == nil {
			t.Fatalf("truncated vk (%d of %d bytes) accepted", cut, len(vkBytes))
		}
	}
}

// TestBatchProveConcurrent exercises the worker pool under the race
// detector (CI runs go test -race): N proofs from one preprocessing pass,
// all valid.
func TestBatchProveConcurrent(t *testing.T) {
	srs := SetupDeterministic(8, 2)
	b := NewBuilder(Jellyfish)
	buildCubic(b)
	compiled, err := Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	prover, err := NewProver(srs, compiled)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	proofs, err := prover.BatchProve(context.Background(), n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(proofs) != n {
		t.Fatalf("got %d proofs, want %d", len(proofs), n)
	}
	for i, p := range proofs {
		if p == nil {
			t.Fatalf("proof %d missing", i)
		}
		if err := Verify(srs, prover.VerifyingKey(), p); err != nil {
			t.Fatalf("batch proof %d rejected: %v", i, err)
		}
	}
}

func TestBatchProveCancellation(t *testing.T) {
	srs := SetupDeterministic(8, 2)
	b := NewBuilder(Vanilla)
	buildCubic(b)
	compiled, err := Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	prover, err := NewProver(srs, compiled)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the batch must abort, not hang
	if _, err := prover.BatchProve(ctx, 8, 2); err == nil {
		t.Fatal("cancelled batch returned no error")
	}
	if _, err := prover.Prove(ctx); err == nil {
		t.Fatal("cancelled single prove returned no error")
	}

	// Invalid batch size.
	if _, err := prover.BatchProve(context.Background(), 0, 2); err == nil {
		t.Fatal("zero-size batch accepted")
	}
}

// TestEstimatorsComparable checks the acceptance criterion: all three
// backends price the same workload through one polymorphic call, and the
// results are mutually consistent (accelerators beat the CPU; the
// fixed-function baseline rejects what it cannot run).
func TestEstimatorsComparable(t *testing.T) {
	ests := Estimators()
	if len(ests) != 3 {
		t.Fatalf("want 3 standard estimators, got %d", len(ests))
	}
	const logGates = 20
	secs := map[string]float64{}
	for _, est := range ests {
		e, err := est.EstimateProtocol(Vanilla, logGates)
		if err != nil {
			t.Fatalf("%s: %v", est.Name(), err)
		}
		if e.Seconds <= 0 {
			t.Fatalf("%s: degenerate estimate %+v", est.Name(), e)
		}
		if e.PowerW <= 0 {
			t.Fatalf("%s: missing power estimate", est.Name())
		}
		secs[est.Name()] = e.Seconds
	}
	cpu := secs["CPU (EPYC-7502, 32 threads)"]
	for name, s := range secs {
		if name != "CPU (EPYC-7502, 32 threads)" && s >= cpu {
			t.Fatalf("%s (%.4fs) should beat the CPU baseline (%.4fs)", name, s, cpu)
		}
	}

	// The fixed-function baseline refuses Jellyfish and >2^24 workloads.
	zks := NewZKSpeedEstimator()
	if _, err := zks.EstimateProtocol(Jellyfish, 20); err == nil {
		t.Fatal("zkSpeed accepted a Jellyfish workload")
	}
	if _, err := zks.EstimateProtocol(Vanilla, 26); err == nil {
		t.Fatal("zkSpeed accepted a 2^26 workload beyond its scalability limit")
	}
	if _, err := zks.EstimateSumCheck(JellyfishZeroCheckID, 20); err == nil {
		t.Fatal("zkSpeed accepted the Jellyfish ZeroCheck")
	}
	// The CPU runs everything.
	if _, err := NewCPUEstimator(4).EstimateSumCheck(JellyfishZeroCheckID, 20); err != nil {
		t.Fatal(err)
	}
}

func TestAcceleratorEstimates(t *testing.T) {
	acc := DefaultAccelerator()
	est, err := acc.EstimateSumCheck(JellyfishZeroCheckID, 24)
	if err != nil {
		t.Fatal(err)
	}
	if est.Seconds <= 0 || est.Utilization <= 0 {
		t.Fatal("degenerate sumcheck estimate")
	}
	// Regression: EstimateSumCheck must report power, like EstimateProtocol.
	if est.PowerW <= 0 {
		t.Fatal("EstimateSumCheck left PowerW zero")
	}
	full, err := acc.EstimateProtocol(Jellyfish, 24)
	if err != nil {
		t.Fatal(err)
	}
	if full.Seconds <= est.Seconds {
		t.Fatal("full protocol must cost more than one sumcheck")
	}
	if full.AreaMM2 < 200 || full.AreaMM2 > 400 {
		t.Fatalf("Table V design area %.1f mm² out of range", full.AreaMM2)
	}
	if _, err := acc.EstimateSumCheck(99, 20); err == nil {
		t.Fatal("unknown constraint accepted")
	}
}

// TestDeprecatedShims keeps the pre-session entry points alive.
func TestDeprecatedShims(t *testing.T) {
	srs := SetupDeterministic(8, 1)
	b := NewCircuitBuilder()
	x := b.Secret(3)
	x2 := b.Mul(x, x)
	x3 := b.Mul(x2, x)
	s := b.Add(x3, x)
	out := b.AddConst(s, 5)
	b.AssertEqualConst(out, 35)
	proof, vk, err := ProveCircuit(srs, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCircuit(srs, vk, proof); err != nil {
		t.Fatal(err)
	}

	jb := NewJellyfishBuilder()
	y := jb.Secret(2)
	z := jb.Power5(y)                // 32
	w := jb.DoubleMulAdd(z, y, y, y) // 64 + 4 = 68
	jb.AssertEqualConst(w, 68)
	jproof, jvk, err := ProveJellyfish(srs, jb, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCircuit(srs, jvk, jproof); err != nil {
		t.Fatal(err)
	}

	if _, err := DefaultAccelerator().EstimateProver(true, 24); err != nil {
		t.Fatal(err)
	}
}
