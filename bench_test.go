// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (Section VI). Each benchmark drives the same code path
// the cmd/experiments subcommand uses, so `go test -bench=.` regenerates the
// measured side of EXPERIMENTS.md. Benchmarks report custom metrics (model
// milliseconds, speedups) alongside wall-clock time of the models themselves.
package zkphire

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"testing"

	"zkphire/internal/core"
	"zkphire/internal/curve"
	"zkphire/internal/ff"
	"zkphire/internal/hw"
	"zkphire/internal/hw/cpumodel"
	"zkphire/internal/hw/dse"
	"zkphire/internal/hw/system"
	"zkphire/internal/hw/zkspeed"
	"zkphire/internal/mle"
	"zkphire/internal/pcs"
	"zkphire/internal/poly"
	"zkphire/internal/sumcheck"
	"zkphire/internal/transcript"
	"zkphire/internal/workloads"
)

// BenchmarkTable1Registry exercises every Table I constraint: expansion,
// validation, and a real (small) SumCheck prove/verify round trip.
func BenchmarkTable1Registry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for id := 0; id < poly.NumRegistered; id++ {
			c := poly.Registered(id)
			if err := c.Validate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable1SumchecksReal proves one real SumCheck per Table I
// constraint at 2^10 rows — the functional ground truth behind every model.
func BenchmarkTable1SumchecksReal(b *testing.B) {
	b.ReportAllocs()
	const numVars = 10
	rng := ff.NewRand(1)
	type inst struct {
		c      *poly.Composite
		assign *sumcheck.Assignment
		claim  ff.Element
	}
	var insts []inst
	for id := 0; id < poly.NumRegistered; id++ {
		c := poly.Registered(id)
		tables := make([]*mle.Table, c.NumVars())
		for i := range tables {
			switch c.Roles[i] {
			case poly.RoleEq:
				tables[i] = mle.Eq(rng.Elements(numVars))
			case poly.RoleWitness:
				tables[i] = mle.FromEvals(rng.SparseElements(1<<numVars, 0.1))
			default:
				tables[i] = mle.FromEvals(rng.Elements(1 << numVars))
			}
		}
		a, err := sumcheck.NewAssignment(c, tables)
		if err != nil {
			b.Fatal(err)
		}
		insts = append(insts, inst{c, a, a.SumAll()})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := insts[i%len(insts)]
		tr := transcript.New("bench")
		if _, _, err := sumcheck.Prove(tr, in.assign, in.claim, sumcheck.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Sweep runs the SumCheck-unit design search across bandwidth
// tiers with the λ=0.8 objective.
func BenchmarkFig6Sweep(b *testing.B) {
	var polys []*poly.Composite
	for id := 0; id <= 19; id++ {
		polys = append(polys, poly.Registered(id))
	}
	cpu := cpumodel.PaperCPU(4)
	cpuSec := make([]float64, len(polys))
	for i, p := range polys {
		cpuSec[i] = cpu.SumcheckSeconds(p, 20)
	}
	b.ResetTimer()
	var last float64
	for i := 0; i < b.N; i++ {
		for _, bw := range []float64{64, 1024, 4096} {
			best, _ := dse.UnitSearch(polys, 20, bw, 37, 0.8, cpuSec)
			last = best.GeomeanSpeedup
		}
	}
	b.ReportMetric(last, "geomean-speedup-4TBs")
}

// BenchmarkFig7HighDegree sweeps polynomial degree 2..30 on a fixed design.
func BenchmarkFig7HighDegree(b *testing.B) {
	cfg := core.Config{PEs: 16, EEs: 5, PLs: 8, BankSizeWords: 1 << 13, Prime: hw.FixedPrime}
	mem := hw.NewMemory(1024)
	b.ResetTimer()
	var total float64
	for i := 0; i < b.N; i++ {
		total = 0
		for d := 2; d <= 30; d++ {
			res, err := core.Simulate(cfg, core.NewWorkload(poly.HighDegree(d), 20), mem)
			if err != nil {
				b.Fatal(err)
			}
			total += res.Seconds
		}
	}
	b.ReportMetric(total*1e3, "sweep-total-model-ms")
}

// BenchmarkFig8Scheduler measures the scheduler across EE counts and degrees
// (the graph-decomposition hot path).
func BenchmarkFig8Scheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for ee := 2; ee <= 7; ee++ {
			for d := 2; d <= 30; d++ {
				if _, err := core.Schedule(poly.HighDegree(d), ee); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkFig9PriorASIC models the Fig. 9 comparison set: Vanilla and
// Jellyfish checks at the iso-zkSpeed-area design point.
func BenchmarkFig9PriorASIC(b *testing.B) {
	cfg := core.Config{PEs: 8, EEs: 2, PLs: 7, BankSizeWords: 1 << 13, Prime: hw.FixedPrime}
	mem := hw.NewMemory(zkspeed.BandwidthGBps)
	checks := []*poly.Composite{
		poly.Registered(20), poly.Registered(21), poly.Registered(24),
		poly.Registered(22), poly.Registered(23),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range checks {
			if _, err := core.Simulate(cfg, core.NewWorkload(c, 24), mem); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable2Sumchecks models the Table II workload set at N=24.
func BenchmarkTable2Sumchecks(b *testing.B) {
	cfg := core.Config{PEs: 8, EEs: 2, PLs: 7, BankSizeWords: 1 << 13, Prime: hw.FixedPrime}
	mem := hw.NewMemory(1024)
	set := []struct {
		c  *poly.Composite
		lg int
	}{
		{poly.Registered(1), 25}, {poly.Registered(2), 25},
		{poly.ProductGate(3), 24}, {poly.VanillaGate(), 24},
		{poly.Registered(21), 24}, {poly.Registered(22), 24},
		{poly.Registered(23), 24}, {poly.Registered(24), 24},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range set {
			if _, err := core.Simulate(cfg, core.NewWorkload(s.c, s.lg), mem); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig10Pareto runs the (coarse) Table III sweep and Pareto
// extraction for 2^24 Jellyfish gates.
func BenchmarkFig10Pareto(b *testing.B) {
	var frontLen int
	for i := 0; i < b.N; i++ {
		pts := dse.SweepSystem(workloads.Jellyfish, 24, dse.SweepOptions{
			Coarse:     true,
			Bandwidths: []float64{512, 2048},
		})
		frontLen = len(dse.Pareto(pts))
	}
	b.ReportMetric(float64(frontLen), "pareto-points")
}

// BenchmarkFig11Breakdowns computes area and runtime breakdowns for the
// Table V design.
func BenchmarkFig11Breakdowns(b *testing.B) {
	cfg := system.TableV()
	for i := 0; i < b.N; i++ {
		a := cfg.Area()
		if a.Total() <= 0 {
			b.Fatal("bad area")
		}
		if _, err := cfg.ProveTime(workloads.Jellyfish, 24, hw.DefaultSparsity); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12Breakdown models the CPU-vs-zkPHIRE comparison and reports
// the headline speedup as a metric.
func BenchmarkFig12Breakdown(b *testing.B) {
	cfg := system.TableV()
	cpu := cpumodel.PaperCPU(32)
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := cfg.ProveTime(workloads.Jellyfish, 24, hw.DefaultSparsity)
		if err != nil {
			b.Fatal(err)
		}
		c := system.CPUProveTime(cpu, workloads.Jellyfish, 24)
		speedup = c.Total() / r.Total()
	}
	b.ReportMetric(speedup, "speedup-vs-cpu")
}

// BenchmarkFig13Workloads models the Jellyfish + masking gains per workload.
func BenchmarkFig13Workloads(b *testing.B) {
	masked := system.TableV()
	plain := system.TableV()
	plain.MaskZeroCheck = false
	for i := 0; i < b.N; i++ {
		for _, w := range workloads.Fig13Set() {
			if w.LogJellyfish == 0 {
				continue
			}
			if _, err := plain.ProveTime(workloads.Vanilla, w.LogVanilla, w.Sparsity); err != nil {
				b.Fatal(err)
			}
			if _, err := masked.ProveTime(workloads.Jellyfish, w.LogJellyfish, w.Sparsity); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig14Crossover sweeps the protocol-level gate degree.
func BenchmarkFig14Crossover(b *testing.B) {
	cfg := system.TableV()
	cfg.MaskZeroCheck = false
	for i := 0; i < b.N; i++ {
		for d := 2; d <= 30; d += 2 {
			if _, err := cfg.HighDegreeProtocol(d, 24); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable5Area evaluates the exemplar design's area/power model.
func BenchmarkTable5Area(b *testing.B) {
	cfg := system.TableV()
	var total float64
	for i := 0; i < b.N; i++ {
		a := cfg.Area()
		p := cfg.Power()
		total = a.Total() + p.Total()
	}
	b.ReportMetric(total, "area-plus-power")
}

// BenchmarkTable6Vanilla models the Vanilla-gate workload table.
func BenchmarkTable6Vanilla(b *testing.B) {
	cfg := system.TableV()
	cfg.MaskZeroCheck = false
	for i := 0; i < b.N; i++ {
		for _, w := range workloads.Registry() {
			if w.LogVanilla > 26 {
				continue
			}
			if _, err := cfg.ProveTime(workloads.Vanilla, w.LogVanilla, w.Sparsity); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable7Jellyfish models the Jellyfish workload table up to 2^30
// nominal gates and reports the geomean speedup metric.
func BenchmarkTable7Jellyfish(b *testing.B) {
	cfg := system.TableV()
	cpu := cpumodel.PaperCPU(32)
	var geoSpeedup float64
	for i := 0; i < b.N; i++ {
		logSum, n := 0.0, 0
		for _, w := range workloads.Registry() {
			if w.LogJellyfish == 0 {
				continue
			}
			r, err := cfg.ProveTime(workloads.Jellyfish, w.LogJellyfish, w.Sparsity)
			if err != nil {
				b.Fatal(err)
			}
			c := system.CPUProveTime(cpu, workloads.Jellyfish, w.LogJellyfish)
			logSum += math.Log(c.Total() / r.Total())
			n++
		}
		geoSpeedup = math.Exp(logSum / float64(n))
	}
	b.ReportMetric(geoSpeedup, "geomean-speedup")
}

// BenchmarkTable8IsoApplication models the iso-application comparison.
func BenchmarkTable8IsoApplication(b *testing.B) {
	cfg := system.TableV()
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"ZCash", "Rescue-4096", "Zexe", "Rollup-10", "Rollup-25"} {
			w, err := workloads.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cfg.ProveTime(workloads.Jellyfish, w.LogJellyfish, w.Sparsity); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable9CrossAccelerator assembles the cross-accelerator row,
// including a real (small) proof for the proof-size column, through the
// session API.
func BenchmarkTable9CrossAccelerator(b *testing.B) {
	b.ReportAllocs()
	cfg := system.TableV()
	w, _ := workloads.ByName("Rollup-25")
	srs := SetupDeterministic(7, 3)
	for i := 0; i < b.N; i++ {
		if _, err := cfg.ProveTime(workloads.Jellyfish, w.LogJellyfish, w.Sparsity); err != nil {
			b.Fatal(err)
		}
		cb := NewCircuitBuilder()
		x := cb.Secret(3)
		cb.AssertEqualConst(cb.Mul(x, x), 9)
		compiled, err := Compile(cb, WithLogGates(4))
		if err != nil {
			b.Fatal(err)
		}
		prover, err := NewProver(srs, compiled)
		if err != nil {
			b.Fatal(err)
		}
		proof, err := prover.Prove(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if err := Verify(srs, prover.VerifyingKey(), proof); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionAmortization quantifies what the session API buys a
// proving service: per-proof cost with compilation + preprocessing re-paid
// every time (one throwaway session per proof — the shape the deprecated
// ProveCircuit shim used to hide) vs amortized through one Prover.
func BenchmarkSessionAmortization(b *testing.B) {
	srs := SetupDeterministic(8, 11)
	build := func() *CircuitBuilder {
		cb := NewCircuitBuilder()
		x := cb.Secret(3)
		x3 := cb.Mul(cb.Mul(x, x), x)
		cb.AssertEqualConst(cb.Add(x3, x), 30)
		return cb
	}
	b.Run("preprocess-every-proof", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			compiled, err := Compile(build(), WithLogGates(4))
			if err != nil {
				b.Fatal(err)
			}
			prover, err := NewProver(srs, compiled)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := prover.Prove(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("session-amortized", func(b *testing.B) {
		compiled, err := Compile(build(), WithLogGates(4))
		if err != nil {
			b.Fatal(err)
		}
		prover, err := NewProver(srs, compiled)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := prover.Prove(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("session-batch-4workers", func(b *testing.B) {
		compiled, err := Compile(build(), WithLogGates(4))
		if err != nil {
			b.Fatal(err)
		}
		prover, err := NewProver(srs, compiled)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := prover.BatchProve(context.Background(), 8, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Design-choice ablation benchmarks (DESIGN.md index) ---

// BenchmarkAblationSchedulerModes compares the Fig. 2 decompositions and
// term packing on the Jellyfish ZeroCheck.
func BenchmarkAblationSchedulerModes(b *testing.B) {
	cfg := core.Config{PEs: 16, EEs: 4, PLs: 5, BankSizeWords: 1 << 13, Prime: hw.FixedPrime}
	mem := hw.NewMemory(2048)
	w := core.NewWorkload(poly.Registered(22), 24)
	for _, tc := range []struct {
		name string
		opts core.Options
	}{
		{"accumulate", core.Options{Mode: core.Accumulate}},
		{"tree", core.Options{Mode: core.BalancedTree}},
		{"packed", core.Options{Mode: core.Accumulate, PackTerms: true}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var last *core.Result
			for i := 0; i < b.N; i++ {
				r, err := core.SimulateOpts(cfg, w, mem, tc.opts)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.Seconds*1e3, "model-ms")
			b.ReportMetric(last.Utilization*100, "util-pct")
		})
	}
}

// BenchmarkAblationPrimeKind compares fixed- vs arbitrary-prime areas.
func BenchmarkAblationPrimeKind(b *testing.B) {
	for _, prime := range []hw.PrimeKind{hw.FixedPrime, hw.ArbitraryPrime} {
		prime := prime
		b.Run(prime.String(), func(b *testing.B) {
			cfg := system.TableV()
			cfg.Prime = prime
			cfg.SumCheck.Prime = prime
			cfg.MSM.Prime = prime
			var area float64
			for i := 0; i < b.N; i++ {
				area = cfg.Area().Total()
			}
			b.ReportMetric(area, "area-mm2")
		})
	}
}

// BenchmarkAblationMasking quantifies the Masked-ZeroCheck gain.
func BenchmarkAblationMasking(b *testing.B) {
	for _, mask := range []bool{false, true} {
		mask := mask
		name := "off"
		if mask {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := system.TableV()
			cfg.MaskZeroCheck = mask
			var ms float64
			for i := 0; i < b.N; i++ {
				r, err := cfg.ProveTime(workloads.Jellyfish, 24, hw.DefaultSparsity)
				if err != nil {
					b.Fatal(err)
				}
				ms = r.Total() * 1e3
			}
			b.ReportMetric(ms, "model-ms")
		})
	}
}

// BenchmarkAblationSparseMSM runs REAL sparse vs dense MSMs on the software
// curve implementation (2^10 points).
func BenchmarkAblationSparseMSM(b *testing.B) {
	rng := ff.NewRand(3)
	n := 1 << 10
	g := curve.GeneratorJac()
	jacs := make([]curve.G1Jac, n)
	for i := range jacs {
		k := rng.Element()
		jacs[i].ScalarMul(&g, &k)
	}
	points := curve.BatchFromJacobian(jacs)
	denseScalars := rng.Elements(n)
	sparseScalars := rng.SparseElements(n, 0.1)
	b.ResetTimer()
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			curve.MSM(points, denseScalars)
		}
	})
	b.Run("sparse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			curve.SparseMSM(points, sparseScalars)
		}
	})
}

// --- PR 2: parallel-engine micro-benchmarks (mle.Fold / curve.MSM /
// pcs.Commit at 2^16–2^20) and the worker-budget sweep. These are the
// kernels BENCH_pr2.json tracks; run with -benchtime=1x for a smoke pass —
// the large sizes cost seconds per op on a laptop core. ---

// benchPoints returns n distinct affine points (i·G) cheaply.
func benchPoints(n int) []curve.G1Affine {
	g := curve.Generator()
	jacs := make([]curve.G1Jac, n)
	var acc curve.G1Jac
	acc.SetInfinity()
	for i := range jacs {
		acc.AddMixed(&g)
		jacs[i] = acc
	}
	return curve.BatchFromJacobian(jacs)
}

// workerBudgets is the sweep each kernel benchmark runs: the serial
// baseline and the full machine.
func workerBudgets() []int {
	if runtime.GOMAXPROCS(0) == 1 {
		return []int{1}
	}
	return []int{1, runtime.GOMAXPROCS(0)}
}

func BenchmarkMLEFold(b *testing.B) {
	rng := ff.NewRand(61)
	for _, lg := range []int{16, 18, 20} {
		base := rng.Elements(1 << lg)
		work := make([]ff.Element, len(base))
		r := rng.Element()
		for _, w := range workerBudgets() {
			b.Run(fmt.Sprintf("2^%d/workers=%d", lg, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					copy(work, base)
					tab := mle.FromEvals(work)
					b.StartTimer()
					tab.FoldWorkers(&r, w)
				}
			})
		}
	}
}

func BenchmarkMLEEvaluate(b *testing.B) {
	rng := ff.NewRand(62)
	for _, lg := range []int{16, 18} {
		tab := mle.FromEvals(rng.Elements(1 << lg))
		point := rng.Elements(lg)
		for _, w := range workerBudgets() {
			b.Run(fmt.Sprintf("2^%d/workers=%d", lg, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					tab.EvaluateWorkers(point, w)
				}
			})
		}
	}
}

func BenchmarkCurveMSM(b *testing.B) {
	rng := ff.NewRand(63)
	points := benchPoints(1 << 20)
	for _, lg := range []int{16, 18, 20} {
		n := 1 << lg
		scalars := rng.Elements(n)
		for _, w := range workerBudgets() {
			b.Run(fmt.Sprintf("2^%d/workers=%d", lg, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					curve.MSMWorkers(points[:n], scalars, w)
				}
			})
		}
	}
}

// BenchmarkPCSCommit uses a synthetic SRS level (the basis points' values do
// not affect MSM cost) to avoid a multi-minute trusted setup at 2^20.
func BenchmarkPCSCommit(b *testing.B) {
	rng := ff.NewRand(64)
	points := benchPoints(1 << 20)
	srs := &pcs.SRS{MaxVars: 20, Levels: make([][]curve.G1Affine, 21)}
	for k := 16; k <= 20; k++ {
		srs.Levels[k] = points[:1<<k]
	}
	for _, lg := range []int{16, 18, 20} {
		dense := mle.FromEvals(rng.Elements(1 << lg))
		sparse := mle.FromEvals(rng.SparseElements(1<<lg, 0.1))
		for _, w := range workerBudgets() {
			b.Run(fmt.Sprintf("dense/2^%d/workers=%d", lg, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := srs.CommitWorkers(dense, w); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("sparse/2^%d/workers=%d", lg, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := srs.CommitWorkers(sparse, w); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkProveSession is a small end-to-end Prove (2^10 rows) across
// worker budgets; cmd/benchjson measures the full logGates=16 point.
func BenchmarkProveSession(b *testing.B) {
	srs := SetupDeterministic(11, 65)
	cb := NewCircuitBuilder()
	x := cb.Secret(3)
	acc := x
	for i := 0; i < 600; i++ {
		if i%2 == 0 {
			acc = cb.Mul(acc, x)
		} else {
			acc = cb.Add(acc, x)
		}
	}
	compiled, err := Compile(cb, WithLogGates(10))
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range workerBudgets() {
		prover, err := NewProver(srs, compiled, WithWorkers(w))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("logGates=10/workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := prover.Prove(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
