#!/bin/sh
# Fuzz smoke: run every Fuzz target in the tree briefly (FUZZTIME each,
# default 10s). This is not a fuzzing campaign — it is a CI regression
# check that the fuzz harnesses still build, their seed corpora still
# pass, and ten seconds of coverage-guided input finds nothing.
#
# Targets are discovered by scanning test files, so adding a Fuzz
# function anywhere picks it up automatically.
set -eu

GO="${GO:-go}"
FUZZTIME="${FUZZTIME:-10s}"

found=0
for file in $(grep -rl --include='*_test.go' '^func Fuzz' .); do
	dir=$(dirname "$file")
	for target in $(grep -ho '^func Fuzz[A-Za-z0-9_]*' "$file" | sed 's/^func //'); do
		found=$((found + 1))
		echo "fuzz-smoke: $target in $dir ($FUZZTIME)"
		"$GO" test -run='^$' -fuzz="^${target}"'$' -fuzztime="$FUZZTIME" "$dir"
	done
done

if [ "$found" -eq 0 ]; then
	echo "fuzz-smoke: no Fuzz targets found" >&2
	exit 1
fi
echo "fuzz-smoke: $found target(s) green"
