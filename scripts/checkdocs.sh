#!/bin/sh
# checkdocs.sh — the CI docs gate. Fails when any package in the module
# (internal layers, the public API, commands, examples) lacks a godoc
# package comment, so `go doc <pkg>` always gives an orientation paragraph.
# Run from the repository root:  sh scripts/checkdocs.sh
set -eu

missing=$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./... | grep -v '^$' || true)
if [ -n "$missing" ]; then
    echo "packages missing a godoc package comment:" >&2
    echo "$missing" | sed 's/^/  /' >&2
    echo "add a '// Package <name> ...' (or '// Command <name> ...') comment above the package clause." >&2
    exit 1
fi
echo "package docs OK ($(go list ./... | wc -l | tr -d ' ') packages)"
