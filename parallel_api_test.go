package zkphire

import (
	"bytes"
	"context"
	"runtime"
	"testing"
	"time"
)

// buildWide emits enough gates (2^11 rows when padded) that the prover's
// parallel kernels actually split work across goroutines.
func buildWide(b Builder) {
	x := b.Secret(3)
	acc := x
	for i := 0; i < 1200; i++ {
		if i%2 == 0 {
			acc = b.Mul(acc, x)
		} else {
			acc = b.Add(acc, x)
		}
	}
	_ = b.AddConst(acc, 1)
}

// TestProofBytesIdenticalAcrossWorkerBudgets is the determinism acceptance
// criterion: the serialized proof must be byte-identical for worker budgets
// 1, 2, and GOMAXPROCS, in both arithmetizations.
func TestProofBytesIdenticalAcrossWorkerBudgets(t *testing.T) {
	srs := SetupDeterministic(12, 6)
	ctx := context.Background()
	for _, kind := range []Arithmetization{Vanilla, Jellyfish} {
		t.Run(kind.String(), func(t *testing.T) {
			b := NewBuilder(kind)
			buildWide(b)
			compiled, err := Compile(b)
			if err != nil {
				t.Fatal(err)
			}
			var reference []byte
			for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
				prover, err := NewProver(srs, compiled, WithWorkers(workers))
				if err != nil {
					t.Fatal(err)
				}
				proof, err := prover.Prove(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if err := prover.Verify(proof); err != nil {
					t.Fatalf("workers=%d: proof rejected: %v", workers, err)
				}
				data, err := proof.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				if reference == nil {
					reference = data
					continue
				}
				if !bytes.Equal(reference, data) {
					t.Fatalf("workers=%d: proof bytes differ from workers=1", workers)
				}
			}
		})
	}
}

// TestProofBytesIdenticalAcrossEndoCache extends the determinism criterion
// to the GLV path's session state: a proof from a prover whose SRS has a
// cold φ-table cache (fresh SetupDeterministic) must be byte-identical to
// one from a warm, session-cached SRS — the endomorphism tables are pure
// precomputation and must never influence proof bytes.
func TestProofBytesIdenticalAcrossEndoCache(t *testing.T) {
	ctx := context.Background()
	b := NewBuilder(Vanilla)
	buildWide(b)
	compiled, err := Compile(b)
	if err != nil {
		t.Fatal(err)
	}

	var reference []byte
	// Two independently built SRSs from the same seed: the first proves
	// twice (cold then warm cache), the second proves once (its own cold
	// cache). All three proofs must serialize identically.
	warmSRS := SetupDeterministic(12, 6)
	coldSRS := SetupDeterministic(12, 6)
	prove := func(srs *SRS, workers int) []byte {
		prover, err := NewProver(srs, compiled, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		proof, err := prover.Prove(ctx)
		if err != nil {
			t.Fatal(err)
		}
		data, err := proof.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	reference = prove(warmSRS, 1)
	if got := prove(warmSRS, 2); !bytes.Equal(reference, got) {
		t.Fatal("warm-cache proof bytes differ from cold-cache reference")
	}
	if got := prove(coldSRS, runtime.GOMAXPROCS(0)); !bytes.Equal(reference, got) {
		t.Fatal("independent-SRS proof bytes differ from reference")
	}
}

// TestBatchProveRaceAcrossBudgets exercises concurrent proofs that each use
// internal parallelism — the combination the race detector must clear.
func TestBatchProveRaceAcrossBudgets(t *testing.T) {
	srs := SetupDeterministic(12, 7)
	b := NewBuilder(Vanilla)
	buildWide(b)
	compiled, err := Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	prover, err := NewProver(srs, compiled, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	proofs, err := prover.BatchProve(context.Background(), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := proofs[0].MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range proofs {
		data, err := p.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref, data) {
			t.Fatalf("batch proof %d differs from proof 0 (same circuit, same transcript)", i)
		}
	}
}

// TestBatchProveMidCancellation cancels a running batch and checks that
// BatchProve returns promptly and does not leak its worker goroutines.
func TestBatchProveMidCancellation(t *testing.T) {
	srs := SetupDeterministic(12, 8)
	b := NewBuilder(Vanilla)
	buildWide(b)
	compiled, err := Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	prover, err := NewProver(srs, compiled)
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := prover.BatchProve(ctx, 64, 2)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let some proofs start
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled batch returned no error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("BatchProve did not return after cancellation")
	}

	// Goroutines must drain back to (about) the pre-batch level.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
